// Package swarm boots and scripts thousand-node populations of live
// daemons over the deterministic loopback transport — the repo's test
// engine for the availability workload family: file survival under
// seeder scarcity, flash crowds, staggered joins, diurnal attendance,
// and partial-mobility partition schedules derived from the tracegen
// mobility models.
//
// A Harness owns one population. Topology is a seeded random-attachment
// graph: node i maintains outbound links to node i-1 plus Degree-1
// uniformly chosen earlier nodes, so every started prefix of the
// population is connected by construction — the property that lets
// churn scripts start, kill, pause, and resume nodes in any order
// without stranding the survivors. Nodes 0..Seeders-1 are
// Internet-access seeders publishing the catalog; everyone else queries
// for every file and downloads cooperatively, piece by piece, through
// the ordinary hello→metadata→pieces protocol.
//
// The harness is deliberately an *observer*, not a scheduler: daemons
// run their real goroutines, tickers, and sockets-in-memory.
// Determinism therefore lives in outcomes, not interleavings — a
// finished scenario's completion set (which node finished which file)
// is a pure function of the configuration, and its digest is the
// regression check.
package swarm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Defaults.
const (
	// DefaultDegree is the outbound link count per node; with random
	// attachment the expected diameter is logarithmic, so pieces cross a
	// thousand-node swarm in a handful of beacon intervals.
	DefaultDegree = 4
	// DefaultMaxPeers bounds each node's peer table. Random attachment
	// gives early nodes in-degree ~Degree·ln(n); the cap sits above
	// that, so it only bites when something is actually wrong.
	DefaultMaxPeers = 64
	// DefaultFileSize / DefaultPieceSize give 16 pieces per file — small
	// enough that a thousand-node distribution is bounded by propagation
	// rounds, not bytes.
	DefaultFileSize  = 16 * 1024
	DefaultPieceSize = 1024
)

// Config sizes and shapes one swarm.
type Config struct {
	// Nodes is the total population, seeders included.
	Nodes int
	// Seeders is how many nodes (IDs 0..Seeders-1) carry the catalog
	// (default 1).
	Seeders int
	// Files is how many files each seeder publishes; URIs are shared, so
	// multiple seeders are replicas (default 1).
	Files int
	// FileSize and PieceSize shape the synthetic files.
	FileSize  int64
	PieceSize int
	// Degree is the outbound link count per node (default DefaultDegree).
	Degree int
	// Seed drives topology chords and per-node fault streams.
	Seed uint64
	// StartNodes is how many nodes Start boots (0 = all). The rest join
	// later via Join — the flash-crowd and staggered-join lever.
	StartNodes int
	// HelloInterval and LivenessWindow set the swarm's beacon clock
	// (defaults 25ms / 150ms: fast enough to converge in seconds, slow
	// enough that a loaded CI box does not false-expire peers).
	HelloInterval  time.Duration
	LivenessWindow time.Duration
	// PiecesPerHello paces serving (default: the daemon's default).
	PiecesPerHello int
	// MaxPeers caps each node's peer table (default DefaultMaxPeers).
	MaxPeers int
	// RetryBudget is each download's stall re-drive budget (default 64:
	// scenario partitions burn retries fast).
	RetryBudget int
	// QueryFiles limits each downloader's initial queries to files
	// 0..QueryFiles-1 (0 = all Files; -1 = none — the scenario script
	// issues queries itself via AddQuery). Completion targets count the
	// initially queried files, or all files when none are queried
	// initially.
	QueryFiles int
	// EnableDHT runs the Kademlia metadata index on every node, seeders
	// included: seeders publish the catalog into the index, downloaders
	// resolve open queries DHT-first.
	EnableDHT bool
	// DHTRepublish is the DHT maintenance cadence (default
	// 4×HelloInterval: fast enough that scenario scripts see the index
	// converge in a few beacon intervals).
	DHTRepublish time.Duration
	// EnableFEC puts every node in one broadcast group on a shared
	// radio domain with the fountain-coded symbol plane — the coded
	// variant of a swarm scenario. Group formation needs a full mesh,
	// so this caps the population (fillDefaults enforces it) and forces
	// Degree = Nodes-1.
	EnableFEC bool
	// SymbolSize is the coded-symbol payload size with EnableFEC
	// (default 256, i.e. 4 source symbols per default-size piece).
	SymbolSize int
	// PeerRate, when positive, arms every node's overload protection:
	// per-peer inbound admission at this rate (messages/second), Busy
	// backpressure on shed requests, and catalog/DHT service limits —
	// the overload scenario's lever.
	PeerRate float64
	// Fault, when non-zero, wraps every node's transport in a chaos
	// injector with a per-node seed derived from Seed.
	Fault fault.Config
	// Schedules adds per-node partition/heal scripts (wall-clock offsets
	// from that node's boot) — the contact-trace adapter's output plugs
	// in here. A node with a schedule gets a fault wrapper even when
	// Fault is zero.
	Schedules map[trace.NodeID][]fault.Event
	// Logf, when set, receives harness lifecycle lines (not per-daemon
	// logs; a thousand daemons' logs would drown anything).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.Nodes < 2 {
		return fmt.Errorf("swarm: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.Seeders <= 0 {
		c.Seeders = 1
	}
	if c.Seeders >= c.Nodes {
		return fmt.Errorf("swarm: %d seeders leave no downloaders in %d nodes", c.Seeders, c.Nodes)
	}
	if c.Files <= 0 {
		c.Files = 1
	}
	if c.FileSize <= 0 {
		c.FileSize = DefaultFileSize
	}
	if c.PieceSize <= 0 {
		c.PieceSize = DefaultPieceSize
	}
	if c.Degree <= 0 {
		c.Degree = DefaultDegree
	}
	if c.StartNodes <= 0 || c.StartNodes > c.Nodes {
		c.StartNodes = c.Nodes
	}
	if c.StartNodes <= c.Seeders {
		c.StartNodes = c.Seeders + 1
	}
	if c.HelloInterval <= 0 {
		c.HelloInterval = 25 * time.Millisecond
	}
	if c.LivenessWindow <= 0 {
		c.LivenessWindow = 6 * c.HelloInterval
	}
	if c.MaxPeers <= 0 {
		c.MaxPeers = DefaultMaxPeers
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 64
	}
	if c.QueryFiles > c.Files {
		return fmt.Errorf("swarm: QueryFiles %d exceeds Files %d", c.QueryFiles, c.Files)
	}
	if c.DHTRepublish <= 0 {
		c.DHTRepublish = 4 * c.HelloInterval
	}
	if c.EnableFEC {
		// One broadcast group spans the population; clique formation
		// needs everyone in radio range of everyone.
		const maxFEC = 8
		if c.Nodes > maxFEC {
			return fmt.Errorf("swarm: EnableFEC supports at most %d nodes (one clique), have %d", maxFEC, c.Nodes)
		}
		c.Degree = c.Nodes - 1
		if c.SymbolSize <= 0 {
			c.SymbolSize = 256
		}
	}
	return nil
}

// Completion is one observed download finish, relative to Start.
type Completion struct {
	AtMs float64      `json:"at_ms"`
	Node trace.NodeID `json:"node"`
	URI  string       `json:"uri"`
}

// nodeState is one population member across its lifetimes.
type nodeState struct {
	id   trace.NodeID
	cfg  daemon.Config
	tr   transport.Transport // this node's (possibly fault-wrapped) view of the net
	chao *fault.Transport    // non-nil when tr is a fault wrapper

	mu      sync.Mutex
	d       *daemon.Daemon
	cancel  context.CancelFunc
	done    chan error
	running bool
	paused  bool
	// retired accumulates counters of finished lifetimes so Kill does
	// not erase a node's transmissions from the totals.
	retired retiredStats
}

type retiredStats struct {
	piecesSent, piecesVerified, piecesDuplicate, piecesResent uint64
	hellosSent, peersRejected, outboxDrops                    uint64
	// DHT and fountain-plane counters, folded on Kill like the rest.
	dhtLookups, dhtLookupHits, dhtCacheHits      uint64
	dhtStoresSent, dhtStoresRecv, dhtRPCs        uint64
	symbolsSent, symbolsRecv, symbolsRelayed     uint64
	fecDecodes, pieceBcastsSent, pieceBcastsRecv uint64
	// Overload-protection counters.
	inboundShed, busyReplies, queriesShed uint64
	outboxDropsControl, outboxDropsData   uint64
}

// Harness runs one swarm. Construct with New, boot with Start, script
// churn with Join/Kill/Pause/Resume, and always Shutdown.
type Harness struct {
	cfg   Config
	net   *transport.Loopback
	nodes []*nodeState
	t0    time.Time

	baseGoroutines int
	baseHeap       uint64
	topoSig        string // seeded-topology fingerprint folded into Digest

	mu          sync.Mutex
	completions []Completion
	target      map[string]bool // expected (node,uri) keys, for fractions
}

// New validates cfg and builds the population: transports, topology,
// and per-node daemon configs. No goroutines run until Start.
func New(cfg Config) (*Harness, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:    cfg,
		net:    transport.NewLoopback(),
		target: make(map[string]bool),
	}

	// Initial queries per downloader (QueryFiles shapes them); targets
	// count the queried files, or every file when scripts query later.
	nq := cfg.Files
	if cfg.QueryFiles > 0 {
		nq = cfg.QueryFiles
	} else if cfg.QueryFiles < 0 {
		nq = 0
	}
	queries := make([]string, nq)
	for f := 0; f < nq; f++ {
		queries[f] = fmt.Sprintf("f%d", f)
	}
	nt := nq
	if nt == 0 {
		nt = cfg.Files
	}
	uris := make([]metadata.URI, nt)
	for f := 0; f < nt; f++ {
		uris[f] = metadata.URIFor(metadata.FileID(f))
	}

	var radio, lane *transport.BroadcastDomain
	if cfg.EnableFEC {
		radio = h.net.Domain("radio")
		lane = h.net.SymbolDomain("radio")
	}

	topo := rng.New(cfg.Seed ^ 0x5ee0c1a1)
	for i := 0; i < cfg.Nodes; i++ {
		id := trace.NodeID(i)
		ns := &nodeState{id: id}

		// Per-node transport: raw loopback unless this node carries
		// chaos or a partition schedule.
		ns.tr = transport.Transport(h.net)
		fcfg := cfg.Fault
		fcfg.Schedule = cfg.Schedules[id]
		if !faultless(fcfg) {
			fcfg.Seed = cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
			ns.chao = fault.Wrap(h.net, fcfg)
			ns.tr = ns.chao
		}

		dcfg := daemon.Config{
			ID:             id,
			Transport:      ns.tr,
			ListenAddr:     nodeAddr(id),
			PeerAddrs:      h.attachTargets(topo, i),
			FileSize:       cfg.FileSize,
			PieceSize:      cfg.PieceSize,
			PiecesPerHello: cfg.PiecesPerHello,
			HelloInterval:  cfg.HelloInterval,
			LivenessWindow: cfg.LivenessWindow,
			MaxPeers:       cfg.MaxPeers,
			RetryBudget:    cfg.RetryBudget,
			PeerRate:       cfg.PeerRate,
			FetchMatching:  true,
			Backoff: transport.Backoff{
				Min:    cfg.HelloInterval / 4,
				Max:    cfg.LivenessWindow,
				Jitter: -1,
			},
			OnComplete: func(uri metadata.URI) { h.observeComplete(id, uri) },
		}
		if cfg.EnableDHT {
			dcfg.EnableDHT = true
			dcfg.DHTRepublish = cfg.DHTRepublish
		}
		if cfg.EnableFEC {
			dcfg.EnableBcast = true
			dcfg.EnableFEC = true
			dcfg.SymbolSize = cfg.SymbolSize
			conn, err := radio.Join(dcfg.ListenAddr)
			if err != nil {
				return nil, fmt.Errorf("swarm: node %d radio: %w", id, err)
			}
			dcfg.Broadcast = conn
			sym, err := lane.Join(dcfg.ListenAddr)
			if err != nil {
				return nil, fmt.Errorf("swarm: node %d symbol lane: %w", id, err)
			}
			dcfg.Symbols = sym
		}
		if i < cfg.Seeders {
			dcfg.InternetAccess = true
			dcfg.InternetNodes = cfg.Seeders
			dcfg.PublishFiles = cfg.Files
		} else {
			dcfg.Queries = queries
			for _, uri := range uris {
				h.target[completionKey(id, uri)] = true
			}
		}
		ns.cfg = dcfg
		h.nodes = append(h.nodes, ns)
	}

	var sig strings.Builder
	fmt.Fprintf(&sig, "n=%d s=%d f=%d d=%d seed=%d\n",
		cfg.Nodes, cfg.Seeders, cfg.Files, cfg.Degree, cfg.Seed)
	for _, ns := range h.nodes {
		fmt.Fprintf(&sig, "%d<-%v\n", ns.id, ns.cfg.PeerAddrs)
	}
	sum := sha256.Sum256([]byte(sig.String()))
	h.topoSig = hex.EncodeToString(sum[:])
	return h, nil
}

// faultless reports whether cfg injects nothing at all.
func faultless(cfg fault.Config) bool {
	return cfg.Drop == 0 && cfg.Corrupt == 0 && cfg.Duplicate == 0 &&
		cfg.Reorder == 0 && cfg.Kill == 0 && cfg.DialFail == 0 &&
		cfg.DelayMax == 0 && len(cfg.Schedule) == 0
}

func nodeAddr(id trace.NodeID) string { return fmt.Sprintf("n%d", id) }

func completionKey(id trace.NodeID, uri metadata.URI) string {
	return fmt.Sprintf("%d:%s", id, uri)
}

// attachTargets picks node i's outbound links: its predecessor plus
// Degree-1 distinct earlier nodes — the random-attachment rule that
// keeps every started prefix connected. Node 0 only listens.
func (h *Harness) attachTargets(topo *rng.Rand, i int) []string {
	if i == 0 {
		return nil
	}
	picked := map[int]bool{i - 1: true}
	targets := []string{nodeAddr(trace.NodeID(i - 1))}
	for len(targets) < h.cfg.Degree && len(picked) < i {
		j := topo.Intn(i)
		if picked[j] {
			continue
		}
		picked[j] = true
		targets = append(targets, nodeAddr(trace.NodeID(j)))
	}
	return targets
}

func (h *Harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *Harness) observeComplete(id trace.NodeID, uri metadata.URI) {
	at := time.Since(h.t0)
	h.mu.Lock()
	h.completions = append(h.completions, Completion{
		AtMs: float64(at) / float64(time.Millisecond),
		Node: id,
		URI:  string(uri),
	})
	n := len(h.completions)
	h.mu.Unlock()
	if n%100 == 0 {
		h.logf("swarm: %d completions", n)
	}
}

// Start boots the first StartNodes members and records the resource
// baseline the budgets are measured against.
func (h *Harness) Start(ctx context.Context) error {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.baseHeap = ms.HeapAlloc
	h.baseGoroutines = runtime.NumGoroutine()
	h.t0 = time.Now()
	for i := 0; i < h.cfg.StartNodes; i++ {
		if err := h.Join(ctx, trace.NodeID(i)); err != nil {
			return err
		}
	}
	h.logf("swarm: started %d/%d nodes (%d seeders)", h.cfg.StartNodes, h.cfg.Nodes, h.cfg.Seeders)
	return nil
}

// Join boots one node (idempotent while it runs). Also the Resume after
// a Kill: a fresh daemon on the same address, identity, and links.
func (h *Harness) Join(ctx context.Context, id trace.NodeID) error {
	ns, err := h.node(id)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.running {
		return nil
	}
	d, err := daemon.New(ns.cfg)
	if err != nil {
		return fmt.Errorf("swarm: node %d: %w", id, err)
	}
	nctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- d.Run(nctx) }()
	ns.d, ns.cancel, ns.done, ns.running, ns.paused = d, cancel, done, true, false
	return nil
}

// Kill stops one node abruptly and joins its goroutines; its counters
// move into the retired totals. The address stays reserved, so a later
// Join resumes the same identity.
func (h *Harness) Kill(id trace.NodeID) error {
	ns, err := h.node(id)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if !ns.running {
		return nil
	}
	ns.cancel()
	<-ns.done
	st := ns.d.Stats()
	ns.retired.piecesSent += st.Transport.PiecesSent
	ns.retired.hellosSent += st.Transport.HellosSent
	ns.retired.peersRejected += st.Transport.PeersRejected
	ns.retired.piecesVerified += st.PiecesVerified
	ns.retired.piecesDuplicate += st.PiecesDuplicate
	ns.retired.piecesResent += st.PiecesResent
	ns.retired.outboxDrops += st.OutboxDrops
	ns.retired.outboxDropsControl += st.OutboxDropsControl
	ns.retired.outboxDropsData += st.OutboxDropsData
	ns.retired.inboundShed += st.Transport.InboundShed
	ns.retired.busyReplies += st.BusyReplies
	ns.retired.queriesShed += st.QueriesShed
	if st.DHT != nil {
		ns.retired.dhtLookups += st.DHT.Lookups
		ns.retired.dhtLookupHits += st.DHT.LookupHits
		ns.retired.dhtCacheHits += st.DHT.CacheHits
		ns.retired.dhtStoresSent += st.DHT.StoresSent
		ns.retired.dhtStoresRecv += st.DHT.StoresRecv
		ns.retired.dhtRPCs += st.DHT.RPCsSent
	}
	if st.Bcast != nil {
		ns.retired.symbolsSent += st.Bcast.SymbolsSent
		ns.retired.symbolsRecv += st.Bcast.SymbolsRecv
		ns.retired.symbolsRelayed += st.Bcast.SymbolsRelayed
		ns.retired.fecDecodes += st.Bcast.FECDecodes
		ns.retired.pieceBcastsSent += st.Bcast.PieceBcastsSent
		ns.retired.pieceBcastsRecv += st.Bcast.PieceBcastsRecv
	}
	ns.d, ns.cancel, ns.done, ns.running = nil, nil, nil, false
	h.logf("swarm: node %d killed", id)
	return nil
}

// Pause suspends a node's radio in place (scripted attendance); Resume
// lifts it.
func (h *Harness) Pause(id trace.NodeID) error { return h.setPaused(id, true) }

// Resume lifts a Pause.
func (h *Harness) Resume(id trace.NodeID) error { return h.setPaused(id, false) }

func (h *Harness) setPaused(id trace.NodeID, p bool) error {
	ns, err := h.node(id)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if !ns.running {
		return fmt.Errorf("swarm: node %d not running", id)
	}
	if p {
		ns.d.Pause()
	} else {
		ns.d.Resume()
	}
	ns.paused = p
	return nil
}

// AddQuery issues a new keyword query on a running node — the
// scenario-script lever for post-shock searches.
func (h *Harness) AddQuery(id trace.NodeID, q string) error {
	ns, err := h.node(id)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if !ns.running {
		return fmt.Errorf("swarm: node %d not running", id)
	}
	ns.d.AddQuery(q)
	return nil
}

// KnowsMetadata reports whether a running node holds an unexpired
// metadata record for uri — the query-resolution ground truth the
// server-death scenario counts.
func (h *Harness) KnowsMetadata(id trace.NodeID, uri metadata.URI) bool {
	ns, err := h.node(id)
	if err != nil {
		return false
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.running && ns.d.KnowsMetadata(uri)
}

// DHTCached reports whether a running node's local DHT cache holds at
// least one value for keyword — the replication probe scenario scripts
// use before killing the publisher.
func (h *Harness) DHTCached(id trace.NodeID, keyword string) bool {
	ns, err := h.node(id)
	if err != nil {
		return false
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if !ns.running || ns.d.DHT() == nil {
		return false
	}
	return len(ns.d.DHT().CachedValues(keyword)) > 0
}

// Health evaluates one running node's /healthz verdict — the overload
// scenario's degraded→recovered probe. The ok return is false when the
// node is not running.
func (h *Harness) Health(id trace.NodeID) (daemon.Health, bool) {
	ns, err := h.node(id)
	if err != nil {
		return daemon.Health{}, false
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if !ns.running {
		return daemon.Health{}, false
	}
	return ns.d.Health(), true
}

// FloodHello attacks a running node from a fabricated identity: a raw
// connection to its listener spams hello frames advertising a download
// of file 0 at the given interval until ctx ends or dur elapses. It
// returns how many hellos went out and how many Busy frames came back
// — the overload scenario's abuse generator. The connection bypasses
// every daemon; only the victim's own admission control stands between
// the flood and its handlers.
func (h *Harness) FloodHello(ctx context.Context, target, from trace.NodeID, interval, dur time.Duration) (sent, busy uint64, err error) {
	conn, err := h.net.Dial(ctx, nodeAddr(target))
	if err != nil {
		return 0, 0, fmt.Errorf("swarm: flood dial node %d: %w", target, err)
	}
	defer conn.Close()
	fctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()
	var busyN atomic.Uint64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			m, err := conn.Recv(fctx)
			if err != nil {
				return
			}
			if m.Type() == wire.TypeBusy {
				busyN.Add(1)
			}
		}
	}()
	hello := &wire.Hello{
		From:        from,
		Queries:     []string{"f0"},
		Downloading: []metadata.URI{firstURI()},
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-fctx.Done():
			cancel()
			conn.Close()
			<-readerDone
			return sent, busyN.Load(), nil
		case <-tick.C:
		}
		if err := conn.Send(fctx, hello); err != nil {
			cancel()
			conn.Close()
			<-readerDone
			if fctx.Err() != nil {
				return sent, busyN.Load(), nil
			}
			return sent, busyN.Load(), fmt.Errorf("swarm: flood send: %w", err)
		}
		sent++
	}
}

// GroupsConfirmed reports whether every running node sits in a
// confirmed broadcast group of the full population — the FEC
// scenarios' readiness gate.
func (h *Harness) GroupsConfirmed() bool {
	for _, ns := range h.nodes {
		ns.mu.Lock()
		d := ns.d
		running := ns.running
		ns.mu.Unlock()
		if !running || d == nil {
			return false
		}
		st := d.Stats()
		if st.Bcast == nil || !st.Bcast.Confirmed || len(st.Bcast.Group) != h.cfg.Nodes {
			return false
		}
	}
	return true
}

func (h *Harness) node(id trace.NodeID) (*nodeState, error) {
	if id < 0 || int(id) >= len(h.nodes) {
		return nil, fmt.Errorf("swarm: node %d outside population %d", id, len(h.nodes))
	}
	return h.nodes[id], nil
}

// Running counts live nodes.
func (h *Harness) Running() int {
	n := 0
	for _, ns := range h.nodes {
		ns.mu.Lock()
		if ns.running {
			n++
		}
		ns.mu.Unlock()
	}
	return n
}

// Completions snapshots the completion events observed so far.
func (h *Harness) Completions() []Completion {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Completion(nil), h.completions...)
}

// CompletionFraction is completions observed over completions expected
// (downloaders × files).
func (h *Harness) CompletionFraction() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.target) == 0 {
		return 0
	}
	return float64(len(h.completions)) / float64(len(h.target))
}

// WaitFraction blocks until the completion fraction reaches frac or ctx
// ends.
func (h *Harness) WaitFraction(ctx context.Context, frac float64) error {
	for {
		if h.CompletionFraction() >= frac {
			return nil
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("swarm: at fraction %.3f (want %.3f): %w",
				h.CompletionFraction(), frac, ctx.Err())
		}
	}
}

// Digest hashes the seeded topology together with the completion *set*
// — sorted (node, uri) pairs — so two runs of the same configuration
// agree byte-for-byte no matter how the scheduler interleaved them,
// while different seeds (different chord graphs) diverge. This is the
// determinism regression check: same config and seed, same digest.
func (h *Harness) Digest() string {
	h.mu.Lock()
	keys := make([]string, len(h.completions))
	for i, c := range h.completions {
		keys[i] = completionKey(c.Node, metadata.URI(c.URI))
	}
	h.mu.Unlock()
	sort.Strings(keys)
	sum := sha256.Sum256([]byte(h.topoSig + "\n" + strings.Join(keys, "\n")))
	return hex.EncodeToString(sum[:8])
}

// Coverage reports how many of uri's pieces at least one *running* node
// holds, against the file's piece total — the availability ground
// truth: a file whose coverage drops below total is unreconstructable
// no matter how long the swarm keeps trying.
func (h *Harness) Coverage(uri metadata.URI) (covered, total int) {
	var union []bool
	for _, ns := range h.nodes {
		ns.mu.Lock()
		d := ns.d
		running := ns.running
		ns.mu.Unlock()
		if !running || d == nil {
			continue
		}
		have := d.Have(uri)
		if len(have) > len(union) {
			grown := make([]bool, len(have))
			copy(grown, union)
			union = grown
		}
		for i, b := range have {
			if b {
				union[i] = true
			}
		}
		// Seeders regenerate pieces from the catalog without holding a
		// PieceSet; an Internet node that knows the file covers it all.
		if ns.cfg.InternetAccess {
			if n := int(h.cfg.FileSize+int64(h.cfg.PieceSize)-1) / h.cfg.PieceSize; n > 0 {
				if len(union) < n {
					grown := make([]bool, n)
					copy(grown, union)
					union = grown
				}
				for i := range union {
					union[i] = true
				}
			}
		}
	}
	total = int(h.cfg.FileSize+int64(h.cfg.PieceSize)-1) / h.cfg.PieceSize
	for _, b := range union {
		if b {
			covered++
		}
	}
	if covered > total {
		covered = total
	}
	return covered, total
}

// Budget is the per-node resource ceiling CheckBudget asserts.
type Budget struct {
	// GoroutinesPerNode bounds (goroutines - baseline) / running nodes.
	GoroutinesPerNode float64
	// BytesPerNode bounds (heap - baseline) / running nodes, measured
	// after a forced GC.
	BytesPerNode float64
}

// DefaultBudget derives the ceiling from the topology: each node runs
// ~4 core goroutines plus one per outbound link and one per session
// end, and random attachment doubles Degree on average — padded 50%
// for scheduler slack.
func (h *Harness) DefaultBudget() Budget {
	return Budget{
		GoroutinesPerNode: 1.5 * float64(5+3*h.cfg.Degree),
		BytesPerNode:      512 * 1024,
	}
}

// Usage measures current per-node resource use against the Start
// baseline.
func (h *Harness) Usage() (goroutinesPerNode, bytesPerNode float64) {
	n := h.Running()
	if n == 0 {
		return 0, 0
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := runtime.NumGoroutine() - h.baseGoroutines
	heap := float64(0)
	if ms.HeapAlloc > h.baseHeap {
		heap = float64(ms.HeapAlloc - h.baseHeap)
	}
	return float64(g) / float64(n), heap / float64(n)
}

// CheckBudget asserts the per-node ceilings right now.
func (h *Harness) CheckBudget(b Budget) error {
	g, mem := h.Usage()
	var errs []error
	if b.GoroutinesPerNode > 0 && g > b.GoroutinesPerNode {
		errs = append(errs, fmt.Errorf("swarm: %.1f goroutines/node exceeds budget %.1f", g, b.GoroutinesPerNode))
	}
	if b.BytesPerNode > 0 && mem > b.BytesPerNode {
		errs = append(errs, fmt.Errorf("swarm: %.0f heap bytes/node exceeds budget %.0f", mem, b.BytesPerNode))
	}
	return errors.Join(errs...)
}

// Shutdown stops every running node and tears the network down. Safe to
// call twice.
func (h *Harness) Shutdown() {
	for _, ns := range h.nodes {
		ns.mu.Lock()
		if ns.running {
			ns.cancel()
		}
		ns.mu.Unlock()
	}
	for _, ns := range h.nodes {
		ns.mu.Lock()
		if ns.running {
			<-ns.done
			ns.running = false
		}
		ns.mu.Unlock()
	}
	h.net.Close()
}

// Report aggregates the swarm's observable state into the per-scenario
// metrics record.
func (h *Harness) Report(scenario string) Report {
	rep := Report{
		Scenario:    scenario,
		Nodes:       h.cfg.Nodes,
		Seeders:     h.cfg.Seeders,
		Files:       h.cfg.Files,
		Pieces:      int(h.cfg.FileSize+int64(h.cfg.PieceSize)-1) / h.cfg.PieceSize,
		Degree:      h.cfg.Degree,
		Seed:        h.cfg.Seed,
		Downloaders: h.cfg.Nodes - h.cfg.Seeders,
		WallMs:      float64(time.Since(h.t0)) / float64(time.Millisecond),
		SurvivalMs:  -1,
		DHTEnabled:  h.cfg.EnableDHT,
		FECEnabled:  h.cfg.EnableFEC,
	}

	var credits []float64
	for _, ns := range h.nodes {
		ns.mu.Lock()
		r := ns.retired
		d := ns.d
		ns.mu.Unlock()
		rep.PiecesSent += r.piecesSent
		rep.PiecesVerified += r.piecesVerified
		rep.PiecesDuplicate += r.piecesDuplicate
		rep.PiecesResent += r.piecesResent
		rep.HellosSent += r.hellosSent
		rep.PeersRejected += r.peersRejected
		rep.OutboxDrops += r.outboxDrops
		rep.OutboxDropsControl += r.outboxDropsControl
		rep.OutboxDropsData += r.outboxDropsData
		rep.InboundShed += r.inboundShed
		rep.BusyReplies += r.busyReplies
		rep.QueriesShed += r.queriesShed
		rep.DHTLookups += r.dhtLookups
		rep.DHTLookupHits += r.dhtLookupHits
		rep.DHTCacheHits += r.dhtCacheHits
		rep.DHTStoresSent += r.dhtStoresSent
		rep.DHTStoresRecv += r.dhtStoresRecv
		rep.DHTRPCsSent += r.dhtRPCs
		rep.SymbolsSent += r.symbolsSent
		rep.SymbolsRecv += r.symbolsRecv
		rep.SymbolsRelayed += r.symbolsRelayed
		rep.FECDecodes += r.fecDecodes
		rep.PieceBcastsSent += r.pieceBcastsSent
		rep.PieceBcastsRecv += r.pieceBcastsRecv
		if d == nil {
			continue
		}
		st := d.Stats()
		rep.PiecesSent += st.Transport.PiecesSent
		rep.PiecesVerified += st.PiecesVerified
		rep.PiecesDuplicate += st.PiecesDuplicate
		rep.PiecesResent += st.PiecesResent
		rep.HellosSent += st.Transport.HellosSent
		rep.PeersRejected += st.Transport.PeersRejected
		rep.OutboxDrops += st.OutboxDrops
		rep.OutboxDropsControl += st.OutboxDropsControl
		rep.OutboxDropsData += st.OutboxDropsData
		rep.InboundShed += st.Transport.InboundShed
		rep.BusyReplies += st.BusyReplies
		rep.QueriesShed += st.QueriesShed
		if st.DHT != nil {
			rep.DHTLookups += st.DHT.Lookups
			rep.DHTLookupHits += st.DHT.LookupHits
			rep.DHTCacheHits += st.DHT.CacheHits
			rep.DHTStoresSent += st.DHT.StoresSent
			rep.DHTStoresRecv += st.DHT.StoresRecv
			rep.DHTRPCsSent += st.DHT.RPCsSent
		}
		if st.Bcast != nil {
			rep.SymbolsSent += st.Bcast.SymbolsSent
			rep.SymbolsRecv += st.Bcast.SymbolsRecv
			rep.SymbolsRelayed += st.Bcast.SymbolsRelayed
			rep.FECDecodes += st.Bcast.FECDecodes
			rep.PieceBcastsSent += st.Bcast.PieceBcastsSent
			rep.PieceBcastsRecv += st.Bcast.PieceBcastsRecv
		}
		total := 0.0
		for _, c := range d.CreditSnapshot() {
			total += c
		}
		credits = append(credits, total)
	}
	if rep.PiecesVerified > 0 {
		// Piece-equivalent transmissions per verified piece: pairwise
		// pieces and piece broadcasts each cost one transmission on
		// their medium; coded symbols (relays included) cost their size
		// fraction of a piece.
		tx := float64(rep.PiecesSent + rep.PieceBcastsSent)
		if h.cfg.EnableFEC {
			tx += float64(rep.SymbolsSent+rep.SymbolsRelayed) *
				float64(h.cfg.SymbolSize) / float64(h.cfg.PieceSize)
		}
		rep.TransmissionsPerPiece = tx / float64(rep.PiecesVerified)
	}
	rep.CreditMean, rep.CreditStddev = meanStddev(credits)

	h.mu.Lock()
	rep.Completions = len(h.completions)
	if len(h.target) > 0 {
		rep.CompletionFraction = float64(len(h.completions)) / float64(len(h.target))
	}
	first, last := math.Inf(1), math.Inf(-1)
	for _, c := range h.completions {
		first = math.Min(first, c.AtMs)
		last = math.Max(last, c.AtMs)
	}
	h.mu.Unlock()
	if rep.Completions > 0 {
		rep.FirstCompletionMs, rep.LastCompletionMs = first, last
	}
	rep.CompletionDigest = h.Digest()
	rep.GoroutinesPerNode, rep.HeapBytesPerNode = h.Usage()
	if covered, total := h.Coverage(firstURI()); total > 0 {
		rep.CoverageFraction = float64(covered) / float64(total)
	}
	return rep
}

func meanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		stddev += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(stddev / float64(len(xs)))
}
