// Package download implements broadcast-based file download (§V): within
// a clique, exactly one node transmits a file piece at a time while every
// other member receives it, so a single transmission can serve many
// downloaders at once.
//
// In the cooperative case (§V-A) the clique's coordinator orders pieces in
// two phases: pieces requested by more members first (ties by decreasing
// file popularity), then unrequested pieces in decreasing popularity. In
// the tit-for-tat case (§V-B) there is no coordinator — a selfish one
// could bias the schedule — so members transmit in the agreed-upon cyclic
// order, each weighing candidate pieces by the summed credit of their
// requesters.
//
// With Config.PiggybackMetadata set, pieces travel with their file's
// metadata, so a receiver can identify, verify and — if the file matches
// one of its queries — discover it. That is the MBT-QM baseline's only
// metadata channel (it has no standalone metadata distribution, like the
// prior content-distribution systems the paper compares against); MBT and
// MBT-Q leave it off and rely on the discovery phase instead.
package download

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Config controls one download exchange.
type Config struct {
	// PieceBudget is the number of piece broadcasts this contact may use.
	PieceBudget int
	// TitForTat switches from coordinator scheduling to cyclic-order
	// credit-weighted sending.
	TitForTat bool
	// PiggybackMetadata attaches the file's metadata to each piece
	// broadcast. This is how MBT-QM — which has no standalone metadata
	// distribution, like the prior content-distribution systems — lets
	// receivers identify and verify content; MBT and MBT-Q distribute
	// metadata exclusively through the discovery phase.
	PiggybackMetadata bool
	// Loss is the per-receiver probability that a broadcast is not
	// decoded (lossy wireless). Requires Rng when positive.
	Loss float64
	// Rng drives loss draws; runs are deterministic given its state.
	Rng *rng.Rand
}

// dropped reports whether one receiver loses the current broadcast.
func (c Config) dropped() bool {
	return c.Loss > 0 && c.Rng != nil && c.Rng.Bool(c.Loss)
}

// Event records one piece broadcast.
type Event struct {
	// URI identifies the file; Piece the piece index.
	URI   metadata.URI
	Piece int
	// Sender transmitted the piece.
	Sender trace.NodeID
	// NewReceivers stored the piece for the first time.
	NewReceivers []trace.NodeID
	// Completed lists receivers whose wanted file became complete.
	Completed []trace.NodeID
	// MetaDelivered lists receivers who got the piggybacked metadata as
	// new and whose own query matches it (a metadata delivery).
	MetaDelivered []trace.NodeID
}

// pieceKey identifies one piece of one file.
type pieceKey struct {
	uri   metadata.URI
	piece int
}

// candidate is a piece some member holds and some member lacks.
type candidate struct {
	key        pieceKey
	total      int
	popularity float64
	meta       *node.StoredMetadata // richest holder-side metadata, may be nil
	holders    []*node.Node
	lackers    []*node.Node
	requesters []*node.Node // lackers that want the file
}

// Exchange runs the download phase of one contact among members,
// returning the broadcasts performed. Member state is updated in place.
func Exchange(now simtime.Time, members []*node.Node, cfg Config) []Event {
	if cfg.PieceBudget <= 0 || len(members) < 2 {
		return nil
	}
	if cfg.TitForTat {
		return exchangeTFT(now, members, cfg)
	}
	return exchangeCoordinator(now, members, cfg)
}

// collectCandidates enumerates transferable pieces in the clique.
func collectCandidates(now simtime.Time, members []*node.Node) []*candidate {
	byKey := make(map[pieceKey]*candidate)
	uris := make(map[metadata.URI]int) // uri -> piece total
	for _, m := range members {
		for _, sm := range m.MetadataStore() {
			if !sm.Meta.Expired(now) {
				uris[sm.Meta.URI] = sm.Meta.NumPieces()
			}
		}
	}
	// Pieces may also exist for files without any in-clique metadata
	// (cached pushes); include them, totals from the piece sets.
	for _, m := range members {
		for _, uri := range pieceURIs(m) {
			if _, ok := uris[uri]; !ok {
				uris[uri] = m.Pieces(uri).Total()
			}
		}
	}
	for uri, total := range uris {
		var sm *node.StoredMetadata
		for _, m := range members {
			if cur := m.Metadata(uri); cur != nil && !cur.Meta.Expired(now) {
				if sm == nil || cur.Popularity > sm.Popularity {
					sm = cur
				}
			}
		}
		pop := 0.0
		if sm != nil {
			pop = sm.Popularity
		}
		for i := 0; i < total; i++ {
			key := pieceKey{uri: uri, piece: i}
			var c *candidate
			for _, m := range members {
				ps := m.Pieces(uri)
				if ps != nil && ps.Have(i) {
					if c == nil {
						c = &candidate{key: key, total: total, popularity: pop, meta: sm}
						byKey[key] = c
					}
					c.holders = append(c.holders, m)
				}
			}
			if c == nil {
				continue
			}
			for _, m := range members {
				ps := m.Pieces(uri)
				if ps != nil && ps.Have(i) {
					continue
				}
				c.lackers = append(c.lackers, m)
				if ps != nil && ps.Want {
					c.requesters = append(c.requesters, m)
				}
			}
			if len(c.lackers) == 0 {
				delete(byKey, key)
			}
		}
	}
	out := make([]*candidate, 0, len(byKey))
	for _, c := range byKey {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.uri != out[j].key.uri {
			return out[i].key.uri < out[j].key.uri
		}
		return out[i].key.piece < out[j].key.piece
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

func pieceURIs(m *node.Node) []metadata.URI {
	var out []metadata.URI
	for _, uri := range m.PieceURIs() {
		out = append(out, uri)
	}
	return out
}

// broadcast transmits c from sender to all lackers.
func broadcast(now simtime.Time, c *candidate, sender *node.Node, cfg Config) Event {
	ev := Event{URI: c.key.uri, Piece: c.key.piece, Sender: sender.ID}
	// Prefer the sender's own metadata for the piggyback; fall back to
	// the clique's best.
	var sm *node.StoredMetadata
	if cfg.PiggybackMetadata {
		sm = sender.Metadata(c.key.uri)
		if sm == nil {
			sm = c.meta
		}
	}
	// Choking (footnote-1 extension): a sender with a choke policy
	// encrypts the broadcast and hands the content key only to unchoked
	// peers; everyone else hears undecipherable bytes.
	var unchoked map[trace.NodeID]bool
	if sender.ChokePolicy != nil {
		ids := make([]trace.NodeID, len(c.lackers))
		for i, m := range c.lackers {
			ids[i] = m.ID
		}
		unchoked = make(map[trace.NodeID]bool)
		for _, id := range sender.ChokePolicy.Unchoked(sender.Ledger, ids) {
			unchoked[id] = true
		}
	}
	for _, m := range c.lackers {
		if unchoked != nil && !unchoked[m.ID] {
			continue
		}
		if cfg.dropped() {
			continue
		}
		if sm != nil && m.AddMetadata(sm.Meta, sm.Popularity, now) {
			for _, q := range m.Queries(now) {
				if sm.Meta.MatchesQuery(q) {
					ev.MetaDelivered = append(ev.MetaDelivered, m.ID)
					break
				}
			}
		}
		if !m.AddPiece(c.key.uri, c.key.piece, c.total) {
			continue
		}
		ev.NewReceivers = append(ev.NewReceivers, m.ID)
		ps := m.Pieces(c.key.uri)
		wanted := ps.Want
		if wanted {
			m.Ledger.RewardRequested(sender.ID)
		} else {
			m.Ledger.RewardUnrequested(sender.ID, c.popularity)
		}
		if wanted && ps.Complete() {
			ev.Completed = append(ev.Completed, m.ID)
		}
	}
	return ev
}

// exchangeCoordinator is the cooperative two-phase schedule (§V-A): the
// coordinator (lowest ID, elected identically by every member) repeatedly
// picks the piece requested by the most members, ties by popularity.
func exchangeCoordinator(now simtime.Time, members []*node.Node, cfg Config) []Event {
	cands := collectCandidates(now, members)
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if len(a.requesters) != len(b.requesters) {
			return len(a.requesters) > len(b.requesters)
		}
		if a.popularity != b.popularity {
			return a.popularity > b.popularity
		}
		if a.key.uri != b.key.uri {
			return a.key.uri < b.key.uri
		}
		return a.key.piece < b.key.piece
	})
	var events []Event
	for _, c := range cands {
		if len(events) >= cfg.PieceBudget {
			break
		}
		sender := pickSender(c.holders)
		if sender == nil {
			continue
		}
		if ev := broadcast(now, c, sender, cfg); len(ev.NewReceivers) > 0 {
			events = append(events, ev)
		}
	}
	return events
}

func pickSender(holders []*node.Node) *node.Node {
	var best *node.Node
	for _, h := range holders {
		if h.FreeRider {
			continue
		}
		if best == nil || h.ID < best.ID {
			best = h
		}
	}
	return best
}

// exchangeTFT rotates senders in the deterministic cyclic order; each
// sender broadcasts the piece maximizing the summed credit of its
// requesters in the sender's own ledger.
func exchangeTFT(now simtime.Time, members []*node.Node, cfg Config) []Event {
	ids := make([]trace.NodeID, len(members))
	byID := make(map[trace.NodeID]*node.Node, len(members))
	for i, m := range members {
		ids[i] = m.ID
		byID[m.ID] = m
	}
	order := clique.CyclicOrder(ids)

	var events []Event
	idle := 0
	for turn := 0; len(events) < cfg.PieceBudget && idle < len(order); turn++ {
		sender := byID[order[turn%len(order)]]
		if sender.FreeRider {
			idle++
			continue
		}
		c := bestForSender(now, members, sender)
		if c == nil {
			idle++
			continue
		}
		idle = 0
		if ev := broadcast(now, c, sender, cfg); len(ev.NewReceivers) > 0 {
			events = append(events, ev)
		} else {
			idle++
		}
	}
	return events
}

func bestForSender(now simtime.Time, members []*node.Node, sender *node.Node) *candidate {
	cands := collectCandidates(now, members)
	var best *candidate
	var bestWeight float64
	for _, c := range cands {
		ps := sender.Pieces(c.key.uri)
		if ps == nil || !ps.Have(c.key.piece) {
			continue
		}
		var requesterIDs []trace.NodeID
		for _, r := range c.requesters {
			requesterIDs = append(requesterIDs, r.ID)
		}
		weight := sender.Ledger.WeightRequest(requesterIDs)
		if best == nil || betterPiece(weight, c, bestWeight, best) {
			best, bestWeight = c, weight
		}
	}
	return best
}

// betterPiece orders pieces for a selfish sender: summed requester
// credit, then popularity, then (URI, piece). Zero-credit requests carry
// no weight — see the discovery package's rationale.
func betterPiece(w float64, c *candidate, bw float64, b *candidate) bool {
	if w != bw {
		return w > bw
	}
	if c.popularity != b.popularity {
		return c.popularity > b.popularity
	}
	if c.key.uri != b.key.uri {
		return c.key.uri < b.key.uri
	}
	return c.key.piece < b.key.piece
}
