package download

// The paper argues (§V) that broadcast-based download scales with node
// density while pair-wise transfer degrades: in a clique of n nodes that
// must share the channel, one broadcast transmission serves the n-1 other
// members, so the useful per-node receive capacity is (n-1)/n of the
// channel rate; pair-wise transmission serves exactly one receiver per
// slot, so each node receives 1/n of the channel rate on average.

// BroadcastPerNodeCapacity returns the per-node receive capacity of
// broadcast download in a clique of n nodes, as a fraction of channel
// rate: (n-1)/n. n < 2 yields 0 — there is nobody to receive.
func BroadcastPerNodeCapacity(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n-1) / float64(n)
}

// PairwisePerNodeCapacity returns the per-node receive capacity of
// pair-wise download in a group of n nodes sharing the channel: 1/n.
// n < 2 yields 0.
func PairwisePerNodeCapacity(n int) float64 {
	if n < 2 {
		return 0
	}
	return 1 / float64(n)
}

// CapacityGain returns the broadcast-over-pairwise capacity ratio, n-1.
func CapacityGain(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n - 1)
}
