package download

import (
	"math"
	"testing"

	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var key = []byte("k")

// makeMeta builds a 4-piece file.
func makeMeta(id metadata.FileID, name string) *metadata.Metadata {
	return metadata.NewSynthetic(id, name, "FOX", "desc", 1024, 256,
		0, simtime.Days(3), key)
}

func expiry() simtime.Time { return simtime.Time(simtime.Days(3)) }

// seedHolder gives n the metadata and the full file.
func seedHolder(n *node.Node, m *metadata.Metadata) {
	n.AddMetadata(m, 0.5, 0)
	n.GrantFullFile(m.URI, m.NumPieces())
}

// seedWanter gives n the metadata and marks the file wanted.
func seedWanter(n *node.Node, m *metadata.Metadata) {
	n.AddMetadata(m, 0.5, 0)
	n.Select(m.URI)
}

func TestExchangeDeliversWantedPieces(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	seedWanter(b, m)

	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 10})
	if len(events) != 4 {
		t.Fatalf("events = %d, want all 4 pieces", len(events))
	}
	if !b.HasFullFile(m.URI) {
		t.Fatal("receiver incomplete after full exchange")
	}
	last := events[len(events)-1]
	if len(last.Completed) != 1 || last.Completed[0] != 1 {
		t.Fatalf("completion event = %+v", last)
	}
}

func TestPieceBudgetRespected(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	seedWanter(b, m)
	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 2})
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if b.Pieces(m.URI).Count() != 2 {
		t.Fatalf("receiver pieces = %d", b.Pieces(m.URI).Count())
	}
}

func TestRequestedPiecesBeforePopularPushes(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	wanted := makeMeta(1, "wanted")
	popular := makeMeta(2, "popular")
	seedHolder(a, wanted)
	a.AddMetadata(popular, 0.99, 0)
	a.GrantFullFile(popular.URI, popular.NumPieces())
	seedWanter(b, wanted)

	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 4})
	for i, ev := range events {
		if ev.URI != wanted.URI {
			t.Fatalf("broadcast %d = %v before requested pieces done", i, ev.URI)
		}
	}
}

func TestBroadcastServesAllLackers(t *testing.T) {
	a := node.New(0, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	members := []*node.Node{a}
	for i := 1; i <= 4; i++ {
		w := node.New(trace.NodeID(i), false)
		seedWanter(w, m)
		members = append(members, w)
	}
	events := Exchange(0, members, Config{PieceBudget: 4})
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4 broadcasts for 4 pieces", len(events))
	}
	for _, w := range members[1:] {
		if !w.HasFullFile(m.URI) {
			t.Fatalf("node %d incomplete; broadcast must serve all members at once", w.ID)
		}
	}
}

func TestUnrequestedPushIsCached(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	// b neither knows nor wants the file.
	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 1})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	ps := b.Pieces(m.URI)
	if ps == nil || ps.Count() != 1 || ps.Want {
		t.Fatalf("cache state = %+v", ps)
	}
}

func TestPiggybackedMetadataDelivers(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz")
	seedHolder(a, m)
	b.AddQuery("jazz", expiry())

	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 1, PiggybackMetadata: true})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if len(events[0].MetaDelivered) != 1 || events[0].MetaDelivered[0] != 1 {
		t.Fatalf("MetaDelivered = %v", events[0].MetaDelivered)
	}
	if !b.HasMetadata(m.URI) {
		t.Fatal("piggybacked metadata not stored")
	}
}

func TestCachedPiecesRelayWithoutMetadata(t *testing.T) {
	// a holds two cached pieces (no metadata anywhere); b can still
	// receive them — totals travel with the piece set.
	a := node.New(0, false)
	b := node.New(1, false)
	a.AddPiece("dtn://files/9", 0, 4)
	a.AddPiece("dtn://files/9", 2, 4)
	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 5})
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 cached relays", len(events))
	}
	if got := b.Pieces("dtn://files/9"); got == nil || got.Count() != 2 {
		t.Fatalf("receiver cache = %+v", got)
	}
}

func TestCreditsAwardedOnPieces(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	c := node.New(2, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	seedWanter(b, m)
	Exchange(0, []*node.Node{a, b, c}, Config{PieceBudget: 1})
	if got := b.Ledger.Credit(0); got != 5 {
		t.Fatalf("requester credit = %v, want 5", got)
	}
	if got := c.Ledger.Credit(0); got != 0.5 {
		t.Fatalf("bystander credit = %v, want popularity 0.5", got)
	}
}

func TestTFTFreeRiderNeverSends(t *testing.T) {
	rider := node.New(0, false)
	rider.FreeRider = true
	giver := node.New(1, false)
	wanter := node.New(2, false)
	hoarded := makeMeta(1, "hoard")
	gift := makeMeta(2, "gift")
	seedHolder(rider, hoarded)
	seedHolder(giver, gift)
	seedWanter(wanter, hoarded)
	seedWanter(wanter, gift)

	events := Exchange(0, []*node.Node{rider, giver, wanter},
		Config{PieceBudget: 10, TitForTat: true})
	for _, ev := range events {
		if ev.Sender == 0 {
			t.Fatalf("free-rider sent %+v", ev)
		}
	}
	if !wanter.HasFullFile(gift.URI) {
		t.Fatal("giver's file did not transfer")
	}
	if wanter.Pieces(hoarded.URI).Count() != 0 {
		t.Fatal("hoarded pieces leaked without a sender")
	}
}

func TestTFTPrefersHighCreditRequester(t *testing.T) {
	sender := node.New(0, false)
	rich := node.New(1, false)
	poor := node.New(2, false)
	for i := 0; i < 4; i++ {
		sender.Ledger.RewardRequested(1)
	}
	richFile := makeMeta(1, "richfile")
	poorFile := makeMeta(2, "poorfile")
	seedHolder(sender, richFile)
	seedHolder(sender, poorFile)
	seedWanter(rich, richFile)
	seedWanter(poor, poorFile)

	events := Exchange(0, []*node.Node{sender, rich, poor},
		Config{PieceBudget: 1, TitForTat: true})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Sender == 0 && events[0].URI != richFile.URI {
		t.Fatalf("sender 0 sent %v, want high-credit peer's file", events[0].URI)
	}
}

func TestZeroBudgetAndSingleton(t *testing.T) {
	a := node.New(0, false)
	m := makeMeta(1, "x")
	seedHolder(a, m)
	if ev := Exchange(0, []*node.Node{a, node.New(1, false)}, Config{}); ev != nil {
		t.Fatalf("zero budget sent %v", ev)
	}
	if ev := Exchange(0, []*node.Node{a}, Config{PieceBudget: 5}); ev != nil {
		t.Fatalf("singleton sent %v", ev)
	}
}

func TestNothingToSend(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	if ev := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 5}); ev != nil {
		t.Fatalf("empty nodes exchanged %v", ev)
	}
}

func TestCapacityModel(t *testing.T) {
	tests := []struct {
		n                   int
		broadcast, pairwise float64
	}{
		{2, 0.5, 0.5},
		{4, 0.75, 0.25},
		{10, 0.9, 0.1},
	}
	for _, tt := range tests {
		if got := BroadcastPerNodeCapacity(tt.n); math.Abs(got-tt.broadcast) > 1e-12 {
			t.Errorf("Broadcast(%d) = %v, want %v", tt.n, got, tt.broadcast)
		}
		if got := PairwisePerNodeCapacity(tt.n); math.Abs(got-tt.pairwise) > 1e-12 {
			t.Errorf("Pairwise(%d) = %v, want %v", tt.n, got, tt.pairwise)
		}
	}
	if BroadcastPerNodeCapacity(1) != 0 || PairwisePerNodeCapacity(0) != 0 || CapacityGain(1) != 0 {
		t.Error("degenerate clique sizes must have zero capacity")
	}
	if got := CapacityGain(5); got != 4 {
		t.Errorf("CapacityGain(5) = %v, want 4", got)
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	// The paper's claim: broadcast capacity increases with density,
	// pair-wise capacity decreases.
	for n := 3; n <= 50; n++ {
		if BroadcastPerNodeCapacity(n) <= BroadcastPerNodeCapacity(n-1) {
			t.Fatalf("broadcast capacity not increasing at n=%d", n)
		}
		if PairwisePerNodeCapacity(n) >= PairwisePerNodeCapacity(n-1) {
			t.Fatalf("pairwise capacity not decreasing at n=%d", n)
		}
	}
}

func TestExchangeMeasuredBroadcastBeatsPairwiseDelivery(t *testing.T) {
	// Behavioural counterpart of the capacity claim: with the same
	// transmission budget, one n-node clique delivers more piece-receipts
	// than pair-wise contacts would.
	m := makeMeta(1, "x")
	const budget = 4

	// Broadcast: 1 holder + 4 wanters in one clique.
	holder := node.New(0, false)
	seedHolder(holder, m)
	members := []*node.Node{holder}
	for i := 1; i <= 4; i++ {
		w := node.New(trace.NodeID(i), false)
		seedWanter(w, m)
		members = append(members, w)
	}
	receipts := 0
	for _, ev := range Exchange(0, members, Config{PieceBudget: budget}) {
		receipts += len(ev.NewReceivers)
	}

	// Pairwise: the same budget serves one receiver per transmission.
	holder2 := node.New(0, false)
	seedHolder(holder2, m)
	w := node.New(1, false)
	seedWanter(w, m)
	pairReceipts := 0
	for _, ev := range Exchange(0, []*node.Node{holder2, w}, Config{PieceBudget: budget}) {
		pairReceipts += len(ev.NewReceivers)
	}

	if receipts <= pairReceipts {
		t.Fatalf("broadcast receipts %d not above pairwise %d", receipts, pairReceipts)
	}
	if receipts != 16 || pairReceipts != 4 {
		t.Fatalf("receipts = %d/%d, want 16/4", receipts, pairReceipts)
	}
}

func TestNoPiggybackWithoutFlag(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz")
	seedHolder(a, m)
	b.AddQuery("jazz", expiry())

	events := Exchange(0, []*node.Node{a, b}, Config{PieceBudget: 1})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if len(events[0].MetaDelivered) != 0 {
		t.Fatalf("MetaDelivered = %v without piggyback", events[0].MetaDelivered)
	}
	if b.HasMetadata(m.URI) {
		t.Fatal("metadata travelled without the piggyback flag")
	}
}
