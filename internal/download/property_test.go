package download

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// randomDownloadState builds a clique with random piece holdings and
// wants over a small catalog.
func randomDownloadState(r *rng.Rand) []*node.Node {
	catalogSize := 2 + r.Intn(5)
	catalog := make([]*metadata.Metadata, catalogSize)
	for i := range catalog {
		catalog[i] = metadata.NewSynthetic(metadata.FileID(i),
			fmt.Sprintf("f%d show", i), "FOX", "d", 1024, 256,
			0, simtime.Days(3), []byte("k"))
	}
	n := 2 + r.Intn(4)
	members := make([]*node.Node, n)
	for i := range members {
		m := node.New(trace.NodeID(i), false)
		m.FreeRider = r.Bool(0.2)
		for _, md := range catalog {
			switch r.Intn(4) {
			case 0: // full holder
				m.AddMetadata(md, r.Float64(), 0)
				m.GrantFullFile(md.URI, md.NumPieces())
			case 1: // wanter
				m.AddMetadata(md, r.Float64(), 0)
				m.Select(md.URI)
			case 2: // partial cache
				m.AddPiece(md.URI, r.Intn(md.NumPieces()), md.NumPieces())
			}
		}
		members[i] = m
	}
	return members
}

func pieceCounts(members []*node.Node) map[string]int {
	out := make(map[string]int)
	for _, m := range members {
		for _, uri := range m.PieceURIs() {
			out[fmt.Sprintf("%d/%s", m.ID, uri)] = m.Pieces(uri).Count()
		}
	}
	return out
}

func TestDownloadInvariants(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8, tft bool) bool {
		r := rng.New(seed)
		members := randomDownloadState(r)
		budget := int(budgetRaw%10) + 1
		before := pieceCounts(members)

		events := Exchange(0, members, Config{
			PieceBudget: budget,
			TitForTat:   tft,
		})
		if len(events) > budget {
			return false
		}
		for _, ev := range events {
			for _, m := range members {
				if m.ID == ev.Sender {
					if m.FreeRider {
						return false
					}
					// A sender must hold what it sends (the sender never
					// appears in its own lackers, so its piece set
					// contained the piece before and after).
					ps := m.Pieces(ev.URI)
					if ps == nil || !ps.Have(ev.Piece) {
						return false
					}
				}
			}
			for _, id := range ev.NewReceivers {
				ps := members[id].Pieces(ev.URI)
				if ps == nil || !ps.Have(ev.Piece) {
					return false
				}
			}
			for _, id := range ev.Completed {
				if !members[id].HasFullFile(ev.URI) {
					return false
				}
			}
		}
		// Piece counts never shrink.
		after := pieceCounts(members)
		for k, v := range before {
			if after[k] < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDownloadSaturates(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		members := randomDownloadState(r)
		for _, m := range members {
			m.FreeRider = false
		}
		Exchange(0, members, Config{PieceBudget: 10000})
		again := Exchange(0, members, Config{PieceBudget: 10000})
		return len(again) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDownloadLossMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		count := func(loss float64) int {
			members := randomDownloadState(rng.New(seed))
			events := Exchange(0, members, Config{
				PieceBudget: 8,
				Loss:        loss,
				Rng:         rng.New(seed + 7),
			})
			total := 0
			for _, ev := range events {
				total += len(ev.NewReceivers)
			}
			return total
		}
		return count(0.8) <= count(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
