// Package fault is a deterministic chaos decorator for transports: it
// wraps any transport.Transport (Loopback in tests, TCP in live demos)
// and injects the failures a DTN link actually exhibits — loss,
// latency, duplication, reordering, byte corruption, abrupt connection
// death, dial failures, and scripted partitions — all driven by a
// seeded RNG so a failing run replays exactly.
//
// Faults are applied on the send path of each wrapped Conn by a
// per-conn pump goroutine that owns its own RNG stream (derived from
// Config.Seed and a conn counter), so fault decisions need no locking
// and are reproducible per connection. Corruption follows the
// transport's decode-error policy on the mutated bytes: a frame whose
// corruption lands in the header (bad magic, bad version) kills the
// connection, a corrupted-but-framed body is dropped (the resync path),
// and a mutation that still decodes is delivered as-is — that last case
// is the interesting one, because it hands the daemon a well-formed
// message whose payload fails checksum or signature verification.
//
// Partitions are scripted, not random: Config.Schedule lists
// partition/heal events at offsets from the transport's creation.
// While partitioned, every send is silently dropped and every dial
// fails, so the peer layer sees exactly what a real network split looks
// like — silence, liveness expiry, and redial storms against a dead
// address.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrPartitioned reports a Dial attempted while a scripted partition is
// active.
var ErrPartitioned = errors.New("fault: network partitioned")

// ErrInjectedDialFailure reports a Dial dropped by the DialFail rate.
var ErrInjectedDialFailure = errors.New("fault: injected dial failure")

// pumpQueue bounds the per-conn fault pipeline; Send blocks (honoring
// its context) when the pump falls behind.
const pumpQueue = 64

// Event is one entry of a partition schedule.
type Event struct {
	// At is the offset from transport creation when the event fires.
	At time.Duration
	// Partition starts a partition when true and heals it when false.
	Partition bool
}

// Config tunes the injector. The zero value injects nothing. All rates
// are per-message (or per-dial) probabilities in [0, 1].
type Config struct {
	// Seed drives every random fault decision; a fixed seed replays
	// the same per-connection fault streams.
	Seed uint64
	// Drop is the probability a sent message silently vanishes.
	Drop float64
	// Corrupt is the probability a sent message has 1–4 of its encoded
	// bytes flipped before delivery (see the package comment for how
	// the mutation is resolved).
	Corrupt float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and delivered
	// after the next one (adjacent swap).
	Reorder float64
	// Kill is the probability the connection dies abruptly right after
	// a message is processed.
	Kill float64
	// DialFail is the probability a Dial fails outright.
	DialFail float64
	// SymbolLoss is the probability a symbol-lane datagram silently
	// vanishes (WrapSymbols), independent of the frame-level Drop so
	// the lossy data plane can be shaped separately from the conns.
	SymbolLoss float64
	// DelayMin and DelayMax bound the extra per-message latency, drawn
	// uniformly. Zero DelayMax means no added latency.
	DelayMin, DelayMax time.Duration
	// Schedule scripts partition/heal events, ordered by At.
	Schedule []Event
}

// Stats counts injected faults; all fields are cumulative.
type Stats struct {
	Sent             uint64 `json:"sent"`
	Delivered        uint64 `json:"delivered"`
	Dropped          uint64 `json:"dropped"`
	PartitionDropped uint64 `json:"partition_dropped"`
	Delayed          uint64 `json:"delayed"`
	Duplicated       uint64 `json:"duplicated"`
	Reordered        uint64 `json:"reordered"`
	CorruptDelivered uint64 `json:"corrupt_delivered"`
	CorruptDropped   uint64 `json:"corrupt_dropped"`
	CorruptKilled    uint64 `json:"corrupt_killed"`
	Killed           uint64 `json:"killed"`
	DialsFailed      uint64 `json:"dials_failed"`
	DialsBlocked     uint64 `json:"dials_blocked"`

	// Symbol-lane datagram counters (WrapSymbols).
	SymbolsSent             uint64 `json:"symbols_sent"`
	SymbolsDelivered        uint64 `json:"symbols_delivered"`
	SymbolsLost             uint64 `json:"symbols_lost"`
	SymbolsPartitionDropped uint64 `json:"symbols_partition_dropped"`
	SymbolsCorruptDelivered uint64 `json:"symbols_corrupt_delivered"`
	SymbolsCorruptLost      uint64 `json:"symbols_corrupt_lost"`
}

// Transport wraps an inner transport with fault injection. Construct
// with Wrap.
type Transport struct {
	inner transport.Transport
	cfg   Config
	start time.Time

	connSeq atomic.Uint64

	mu      sync.Mutex
	dialRNG *rng.Rand
	stats   Stats
}

// Wrap decorates inner with fault injection per cfg.
func Wrap(inner transport.Transport, cfg Config) *Transport {
	return &Transport{
		inner:   inner,
		cfg:     cfg,
		start:   time.Now(),
		dialRNG: rng.New(cfg.Seed),
	}
}

// Partitioned reports whether a scripted partition is active now.
func (t *Transport) Partitioned() bool { return t.partitionedAt(time.Since(t.start)) }

func (t *Transport) partitionedAt(elapsed time.Duration) bool {
	p := false
	for _, e := range t.cfg.Schedule {
		if elapsed >= e.At {
			p = e.Partition
		}
	}
	return p
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *Transport) addStat(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// Dial dials through the inner transport unless a partition or an
// injected dial failure intervenes.
func (t *Transport) Dial(ctx context.Context, addr string) (transport.Conn, error) {
	if t.Partitioned() {
		t.addStat(func(s *Stats) { s.DialsBlocked++ })
		return nil, fmt.Errorf("%q: %w", addr, ErrPartitioned)
	}
	if t.cfg.DialFail > 0 {
		t.mu.Lock()
		fail := t.dialRNG.Bool(t.cfg.DialFail)
		if fail {
			t.stats.DialsFailed++
		}
		t.mu.Unlock()
		if fail {
			return nil, fmt.Errorf("%q: %w", addr, ErrInjectedDialFailure)
		}
	}
	c, err := t.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return t.newConn(c), nil
}

// Listen listens through the inner transport; accepted conns are
// wrapped with injection.
func (t *Transport) Listen(addr string) (transport.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &listener{t: t, inner: l}, nil
}

type listener struct {
	t     *Transport
	inner transport.Listener
}

func (l *listener) Accept(ctx context.Context) (transport.Conn, error) {
	c, err := l.inner.Accept(ctx)
	if err != nil {
		return nil, err
	}
	return l.t.newConn(c), nil
}

func (l *listener) Addr() string { return l.inner.Addr() }
func (l *listener) Close() error { return l.inner.Close() }

// conn is one faulty link: sends pass through the pump, receives pass
// straight through to the inner conn.
type conn struct {
	t     *Transport
	inner transport.Conn
	rng   *rng.Rand // owned by the pump goroutine
	sq    chan wire.Msg
	done  chan struct{}
	stop  context.CancelFunc
	once  sync.Once
}

func (t *Transport) newConn(inner transport.Conn) *conn {
	// Each conn's fault stream is seeded from the master seed and a
	// creation counter, so decisions are independent per conn and
	// reproducible for a fixed seed.
	n := t.connSeq.Add(1)
	pctx, stop := context.WithCancel(context.Background())
	c := &conn{
		t:     t,
		inner: inner,
		rng:   rng.New(t.cfg.Seed ^ n*0x9e3779b97f4a7c15),
		sq:    make(chan wire.Msg, pumpQueue),
		done:  make(chan struct{}),
		stop:  stop,
	}
	go c.pump(pctx)
	return c
}

func (c *conn) Send(ctx context.Context, m wire.Msg) error {
	select {
	case c.sq <- m:
		return nil
	case <-c.done:
		return transport.ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *conn) Recv(ctx context.Context) (wire.Msg, error) {
	return c.inner.Recv(ctx)
}

func (c *conn) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.stop()
	})
	return c.inner.Close()
}

func (c *conn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *conn) RemoteAddr() string { return c.inner.RemoteAddr() }

// pump applies the fault pipeline to each queued message, one at a
// time: partition check, drop, delay, corruption, delivery (possibly
// doubled), then an abrupt-kill roll.
func (c *conn) pump(ctx context.Context) {
	var held wire.Msg // one message stashed by a reorder roll
	for {
		var m wire.Msg
		select {
		case m = <-c.sq:
		case <-ctx.Done():
			return
		}
		if held == nil && c.rng.Bool(c.t.cfg.Reorder) {
			// Hold this message back one slot; the next message
			// overtakes it. Hellos beacon continuously, so the hold is
			// short-lived; a conn that dies first simply loses it,
			// which is just another drop.
			c.t.addStat(func(s *Stats) { s.Reordered++ })
			held = m
			continue
		}
		c.process(ctx, m)
		if held != nil {
			c.process(ctx, held)
			held = nil
		}
	}
}

// process runs one message through the fault rolls and forwards the
// survivors to the inner conn.
func (c *conn) process(ctx context.Context, m wire.Msg) {
	cfg := &c.t.cfg
	c.t.addStat(func(s *Stats) { s.Sent++ })
	// An abrupt-kill roll fires whether or not the message survives the
	// other faults, mimicking a contact that walks out of radio range
	// mid-conversation.
	kill := c.rng.Bool(cfg.Kill)
	defer func() {
		if kill {
			c.t.addStat(func(s *Stats) { s.Killed++ })
			c.Close()
		}
	}()

	if c.t.Partitioned() {
		c.t.addStat(func(s *Stats) { s.PartitionDropped++ })
		return
	}
	if c.rng.Bool(cfg.Drop) {
		c.t.addStat(func(s *Stats) { s.Dropped++ })
		return
	}
	if cfg.DelayMax > 0 {
		d := cfg.DelayMin + time.Duration(c.rng.Float64()*float64(cfg.DelayMax-cfg.DelayMin))
		if d > 0 {
			c.t.addStat(func(s *Stats) { s.Delayed++ })
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}
	if c.rng.Bool(cfg.Corrupt) {
		mutated, verdict := c.corrupt(m)
		switch verdict {
		case corruptKill:
			c.t.addStat(func(s *Stats) { s.CorruptKilled++ })
			kill = true
			return
		case corruptDrop:
			c.t.addStat(func(s *Stats) { s.CorruptDropped++ })
			return
		default:
			c.t.addStat(func(s *Stats) { s.CorruptDelivered++ })
			m = mutated
		}
	}
	if err := c.inner.Send(ctx, m); err != nil {
		return
	}
	c.t.addStat(func(s *Stats) { s.Delivered++ })
	if c.rng.Bool(cfg.Duplicate) {
		if err := c.inner.Send(ctx, m); err != nil {
			return
		}
		c.t.addStat(func(s *Stats) { s.Duplicated++ })
	}
}

type corruptVerdict int

const (
	corruptDeliver corruptVerdict = iota // mutation still decodes: deliver it
	corruptDrop                          // malformed body: transport would resync past it
	corruptKill                          // framing garbage: transport would close
)

// corrupt flips bytes in m's encoding and resolves the mutation the way
// the transport's decode policy would.
func (c *conn) corrupt(m wire.Msg) (wire.Msg, corruptVerdict) {
	frame := CorruptFrame(c.rng, wire.Encode(m))
	got, err := wire.Decode(frame)
	switch {
	case err == nil:
		return got, corruptDeliver
	case errors.Is(err, wire.ErrBadMagic), errors.Is(err, wire.ErrVersion):
		return nil, corruptKill
	default:
		return nil, corruptDrop
	}
}

// CorruptFrame flips 1–4 bytes of frame at random offsets, returning a
// fresh slice. Exported so the wire fuzz corpus can be grown from the
// exact mutations the injector produces.
func CorruptFrame(r *rng.Rand, frame []byte) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	if len(out) == 0 {
		return out
	}
	flips := 1 + r.Intn(4)
	for i := 0; i < flips; i++ {
		out[r.Intn(len(out))] ^= byte(1 + r.Intn(255))
	}
	return out
}
