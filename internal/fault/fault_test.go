package fault

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// pair builds a loopback link where only the dial side injects faults,
// so exactly one fault conn exists and its RNG stream is reproducible.
func pair(t *testing.T, cfg Config) (dial, accept transport.Conn, ft *Transport) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	lis, err := net.Listen("addr")
	if err != nil {
		t.Fatal(err)
	}
	ft = Wrap(net, cfg)
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := lis.Accept(context.Background())
		if err == nil {
			accepted <- c
		}
	}()
	dial, err = ft.Dial(context.Background(), "addr")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case accept = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return dial, accept, ft
}

// drain receives until the link goes quiet, returning hello From IDs.
func drain(c transport.Conn, quiet time.Duration) []trace.NodeID {
	var got []trace.NodeID
	for {
		ctx, cancel := context.WithTimeout(context.Background(), quiet)
		m, err := c.Recv(ctx)
		cancel()
		if err != nil {
			return got
		}
		if h, ok := m.(*wire.Hello); ok {
			got = append(got, h.From)
		}
	}
}

// sendHellos streams n hellos from a goroutine (the receiver must drain
// concurrently: the pump and inner queues together hold fewer messages
// than a test sends).
func sendHellos(t *testing.T, c transport.Conn, n int) {
	t.Helper()
	go func() {
		for i := 0; i < n; i++ {
			if c.Send(context.Background(), &wire.Hello{From: trace.NodeID(i)}) != nil {
				return
			}
		}
	}()
}

func TestPassThroughInOrder(t *testing.T) {
	dial, accept, ft := pair(t, Config{Seed: 1})
	sendHellos(t, dial, 50)
	got := drain(accept, 500*time.Millisecond)
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50 with no faults configured", len(got))
	}
	for i, id := range got {
		if id != trace.NodeID(i) {
			t.Fatalf("message %d arrived as %d: reordered without Reorder set", i, id)
		}
	}
	st := ft.Stats()
	if st.Delivered != 50 || st.Dropped != 0 || st.CorruptDelivered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropAll(t *testing.T) {
	dial, accept, ft := pair(t, Config{Seed: 1, Drop: 1})
	sendHellos(t, dial, 20)
	if got := drain(accept, 300*time.Millisecond); len(got) != 0 {
		t.Fatalf("%d messages leaked through Drop=1", len(got))
	}
	if st := ft.Stats(); st.Dropped != 20 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDuplicateAll(t *testing.T) {
	dial, accept, ft := pair(t, Config{Seed: 1, Duplicate: 1})
	sendHellos(t, dial, 10)
	got := drain(accept, 500*time.Millisecond)
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20 (each message doubled)", len(got))
	}
	if st := ft.Stats(); st.Duplicated != 10 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeterministicForSeed replays the same send sequence through two
// transports with the same seed and demands identical survivors.
func TestDeterministicForSeed(t *testing.T) {
	run := func() []trace.NodeID {
		dial, accept, _ := pair(t, Config{Seed: 42, Drop: 0.5})
		sendHellos(t, dial, 200)
		return drain(accept, 500*time.Millisecond)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages for the same seed", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("survivor %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 60 || len(a) > 140 {
		t.Fatalf("Drop=0.5 delivered %d of 200", len(a))
	}
}

// TestCorruptPolicy checks every corrupted message is resolved per the
// transport decode policy: delivered mutated, dropped, or conn-killing.
func TestCorruptPolicy(t *testing.T) {
	dial, accept, ft := pair(t, Config{Seed: 7, Corrupt: 1})
	var sendErr error
	sent := 0
	for i := 0; i < 100; i++ {
		sendErr = dial.Send(context.Background(), &wire.Hello{From: trace.NodeID(i)})
		if sendErr != nil {
			break // a corrupt header killed the conn; expected
		}
		sent++
	}
	drain(accept, 300*time.Millisecond)
	st := ft.Stats()
	if st.CorruptDelivered+st.CorruptDropped+st.CorruptKilled != st.Sent {
		t.Fatalf("corruption verdicts %d+%d+%d do not cover %d processed messages",
			st.CorruptDelivered, st.CorruptDropped, st.CorruptKilled, st.Sent)
	}
	if st.Sent == 0 {
		t.Fatal("no messages processed")
	}
}

func TestKillClosesConn(t *testing.T) {
	dial, accept, ft := pair(t, Config{Seed: 3, Kill: 1})
	// The first processed message triggers the kill; subsequent sends
	// must fail once the close propagates.
	dial.Send(context.Background(), &wire.Hello{From: 1})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := dial.Send(context.Background(), &wire.Hello{From: 2}); err != nil {
			if st := ft.Stats(); st.Killed == 0 {
				t.Fatalf("conn died without a kill stat: %+v", st)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("conn survived Kill=1")
	_ = accept
}

func TestPartitionSchedule(t *testing.T) {
	tr := Wrap(transport.NewLoopback(), Config{Schedule: []Event{
		{At: 10 * time.Second, Partition: true},
		{At: 20 * time.Second, Partition: false},
		{At: 30 * time.Second, Partition: true},
	}})
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {9 * time.Second, false}, {10 * time.Second, true},
		{15 * time.Second, true}, {20 * time.Second, false}, {35 * time.Second, true},
	} {
		if got := tr.partitionedAt(tc.at); got != tc.want {
			t.Fatalf("partitionedAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestPartitionBlocksDialAndTraffic(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	if _, err := net.Listen("addr"); err != nil {
		t.Fatal(err)
	}
	ft := Wrap(net, Config{Schedule: []Event{{At: 0, Partition: true}}})
	if _, err := ft.Dial(context.Background(), "addr"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: %v, want ErrPartitioned", err)
	}
	if st := ft.Stats(); st.DialsBlocked != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDialFail(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	if _, err := net.Listen("addr"); err != nil {
		t.Fatal(err)
	}
	ft := Wrap(net, Config{Seed: 1, DialFail: 1})
	if _, err := ft.Dial(context.Background(), "addr"); !errors.Is(err, ErrInjectedDialFailure) {
		t.Fatalf("dial with DialFail=1: %v, want ErrInjectedDialFailure", err)
	}
}

func TestCorruptFrameDeterministic(t *testing.T) {
	frame := wire.EncodeHello(&wire.Hello{From: 9, Queries: []string{"jazz"}})
	a := CorruptFrame(rng.New(5), frame)
	b := CorruptFrame(rng.New(5), frame)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different mutations")
	}
	if bytes.Equal(a, frame) {
		t.Fatal("mutation left the frame unchanged")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop=0.3,corrupt=0.2,dup=0.05,reorder=0.1,kill=0.01,dialfail=0.2,delay=50ms,delaymin=5ms,partition=30s-40s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.3 || cfg.Corrupt != 0.2 || cfg.Duplicate != 0.05 ||
		cfg.Reorder != 0.1 || cfg.Kill != 0.01 || cfg.DialFail != 0.2 ||
		cfg.DelayMax != 50*time.Millisecond || cfg.DelayMin != 5*time.Millisecond {
		t.Fatalf("parsed %+v", cfg)
	}
	want := []Event{{At: 30 * time.Second, Partition: true}, {At: 40 * time.Second, Partition: false}}
	if len(cfg.Schedule) != 2 || cfg.Schedule[0] != want[0] || cfg.Schedule[1] != want[1] {
		t.Fatalf("schedule %+v", cfg.Schedule)
	}

	for _, bad := range []string{
		"drop", "drop=2", "drop=-0.1", "nope=1", "partition=10s", "partition=10s-5s", "seed=x",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Drop != 0 {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
}
