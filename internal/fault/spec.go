package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the compact fault spec used by `mbtd -fault`: a
// comma-separated list of key=value pairs. Keys:
//
//	seed=N            RNG seed (default 1)
//	drop=F            per-message drop probability
//	corrupt=F         per-message corruption probability
//	dup=F             per-message duplication probability
//	reorder=F         per-message reorder probability
//	kill=F            per-message abrupt-kill probability
//	dialfail=F        per-dial failure probability
//	symloss=F         per-datagram symbol-lane loss probability
//	delay=D           max per-message extra latency (e.g. 50ms)
//	delaymin=D        min per-message extra latency
//	partition=D1-D2   one scripted partition from offset D1 to D2
//
// Example: "seed=7,drop=0.3,corrupt=0.2,delay=50ms,partition=30s-40s".
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: %q is not key=value", part)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			cfg.Drop, err = parseRate(val)
		case "corrupt":
			cfg.Corrupt, err = parseRate(val)
		case "dup":
			cfg.Duplicate, err = parseRate(val)
		case "reorder":
			cfg.Reorder, err = parseRate(val)
		case "kill":
			cfg.Kill, err = parseRate(val)
		case "dialfail":
			cfg.DialFail, err = parseRate(val)
		case "symloss":
			cfg.SymbolLoss, err = parseRate(val)
		case "delay":
			cfg.DelayMax, err = time.ParseDuration(val)
		case "delaymin":
			cfg.DelayMin, err = time.ParseDuration(val)
		case "partition":
			from, to, ok := strings.Cut(val, "-")
			if !ok {
				return Config{}, fmt.Errorf("fault: partition wants D1-D2, got %q", val)
			}
			var start, end time.Duration
			if start, err = time.ParseDuration(from); err == nil {
				end, err = time.ParseDuration(to)
			}
			if err == nil && end <= start {
				err = fmt.Errorf("end %v not after start %v", end, start)
			}
			if err == nil {
				cfg.Schedule = append(cfg.Schedule,
					Event{At: start, Partition: true},
					Event{At: end, Partition: false})
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("fault: %s: %w", key, err)
		}
	}
	return cfg, nil
}

func parseRate(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", f)
	}
	return f, nil
}
