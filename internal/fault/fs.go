package fault

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/rng"
	"repro/internal/store"
)

// Filesystem fault injection: WrapFS decorates a store.FS the way Wrap
// decorates a transport, extending the chaos model from the network to
// the disk. Two fault families are injected, both driven by a seeded
// RNG so a failing run replays exactly:
//
//   - Background faults: ShortWrite persists only a random prefix of a
//     write and errors (ENOSPC, EIO mid-buffer); SyncFail makes an
//     fsync report failure. Both leave the FS alive, exercising the
//     store's truncate-back repair path.
//
//   - Crash-at-point: CrashAtOp names the 1-based mutating operation
//     (write, sync, truncate, rename, remove) at which the process
//     "dies". The crashing write persists a random prefix — the torn
//     write a real crash mid-append leaves — a crashing rename or sync
//     simply does not happen, and every operation afterwards fails
//     with ErrCrashed. The caller then discards the daemon, reopens
//     the data directory with a clean FS, and asserts recovery.
//
// The model is fail-stop with torn writes: bytes a successful Write
// reported written are durable. Loss of written-but-unsynced data is
// approximated by the torn-write prefix at the crash point itself,
// which is exactly the window the WAL's frame CRCs must cover.
type FSConfig struct {
	// Seed drives the prefix lengths and background fault decisions.
	Seed uint64
	// ShortWrite is the probability a Write persists a prefix and fails.
	ShortWrite float64
	// SyncFail is the probability a Sync reports failure.
	SyncFail float64
	// CrashAtOp, when > 0, kills the filesystem at that mutating op.
	CrashAtOp int64
}

// Injected filesystem errors.
var (
	// ErrCrashed reports any operation at or past the crash point.
	ErrCrashed = errors.New("fault: fs crashed")
	// ErrInjectedWrite reports a short write.
	ErrInjectedWrite = errors.New("fault: injected short write")
	// ErrInjectedSync reports an fsync failure.
	ErrInjectedSync = errors.New("fault: injected fsync error")
)

// FSStats counts filesystem activity and injected faults.
type FSStats struct {
	Ops         int64 `json:"ops"`
	Writes      int64 `json:"writes"`
	Syncs       int64 `json:"syncs"`
	Renames     int64 `json:"renames"`
	ShortWrites int64 `json:"short_writes"`
	SyncFails   int64 `json:"sync_fails"`
	Crashed     bool  `json:"crashed"`
}

// FS wraps a store.FS with fault injection. Construct with WrapFS.
type FS struct {
	inner store.FS
	cfg   FSConfig

	mu        sync.Mutex
	rng       *rng.Rand
	ops       int64
	crashed   bool
	stats     FSStats
	renameOps []int64
}

// WrapFS decorates inner per cfg.
func WrapFS(inner store.FS, cfg FSConfig) *FS {
	return &FS{inner: inner, cfg: cfg, rng: rng.New(cfg.Seed ^ 0xF5)}
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Stats snapshots the counters.
func (f *FS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Ops = f.ops
	st.Crashed = f.crashed
	return st
}

// op accounts one mutating operation and resolves the crash schedule:
// it returns crashNow on exactly the CrashAtOp-th op (the op takes its
// torn partial effect) and ErrCrashed for every op after.
type opVerdict int

const (
	opOK opVerdict = iota
	opCrashNow
	opDead
)

func (f *FS) op(count *int64) (opVerdict, int64, *rng.Rand) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return opDead, 0, nil
	}
	f.ops++
	if count != nil {
		*count++
	}
	if f.cfg.CrashAtOp > 0 && f.ops >= f.cfg.CrashAtOp {
		f.crashed = true
		return opCrashNow, f.ops, f.rng
	}
	return opOK, f.ops, f.rng
}

// RenameOps returns the op-clock indices at which renames ran. A probe
// run uses them to script a later crash exactly at a snapshot commit.
func (f *FS) RenameOps() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.renameOps...)
}

// OpenFile implements store.FS. Opens are not mutating and do not
// advance the op clock, but a crashed FS refuses them.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	if f.Crashed() {
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Rename implements store.FS; a crash here means the rename never
// happened (the commit point of a snapshot was not reached).
func (f *FS) Rename(oldpath, newpath string) error {
	verdict, idx, _ := f.op(&f.stats.Renames)
	if verdict != opOK {
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	f.mu.Lock()
	f.renameOps = append(f.renameOps, idx)
	f.mu.Unlock()
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FS) Remove(name string) error {
	verdict, _, _ := f.op(nil)
	if verdict != opOK {
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	}
	return f.inner.Remove(name)
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return fmt.Errorf("mkdir %s: %w", path, ErrCrashed)
	}
	return f.inner.MkdirAll(path, perm)
}

// Stat implements store.FS.
func (f *FS) Stat(name string) (os.FileInfo, error) {
	if f.Crashed() {
		return nil, fmt.Errorf("stat %s: %w", name, ErrCrashed)
	}
	return f.inner.Stat(name)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(path string) error {
	verdict, _, _ := f.op(&f.stats.Syncs)
	if verdict != opOK {
		return fmt.Errorf("syncdir %s: %w", path, ErrCrashed)
	}
	return f.inner.SyncDir(path)
}

// faultFile decorates one open file.
type faultFile struct {
	fs    *FS
	name  string
	inner store.File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.Crashed() {
		return 0, fmt.Errorf("read %s: %w", ff.name, ErrCrashed)
	}
	return ff.inner.Read(p)
}

// Write persists p, subject to the fault schedule: at the crash point
// or on a ShortWrite draw only a seeded prefix reaches the file, and
// the call errors.
func (ff *faultFile) Write(p []byte) (int, error) {
	verdict, _, rnd := ff.fs.op(&ff.fs.stats.Writes)
	switch verdict {
	case opDead:
		return 0, fmt.Errorf("write %s: %w", ff.name, ErrCrashed)
	case opCrashNow:
		n := 0
		if len(p) > 0 {
			ff.fs.mu.Lock()
			n = rnd.Intn(len(p))
			ff.fs.mu.Unlock()
		}
		ff.inner.Write(p[:n])
		return n, fmt.Errorf("write %s (torn at %d/%d): %w", ff.name, n, len(p), ErrCrashed)
	}
	ff.fs.mu.Lock()
	short := ff.fs.cfg.ShortWrite > 0 && rnd.Float64() < ff.fs.cfg.ShortWrite
	n := 0
	if short && len(p) > 0 {
		n = rnd.Intn(len(p))
		ff.fs.stats.ShortWrites++
	}
	ff.fs.mu.Unlock()
	if short {
		if n > 0 {
			ff.inner.Write(p[:n])
		}
		return n, fmt.Errorf("write %s (%d/%d): %w", ff.name, n, len(p), ErrInjectedWrite)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	verdict, _, rnd := ff.fs.op(&ff.fs.stats.Syncs)
	switch verdict {
	case opDead, opCrashNow:
		return fmt.Errorf("sync %s: %w", ff.name, ErrCrashed)
	}
	ff.fs.mu.Lock()
	fail := ff.fs.cfg.SyncFail > 0 && rnd.Float64() < ff.fs.cfg.SyncFail
	if fail {
		ff.fs.stats.SyncFails++
	}
	ff.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("sync %s: %w", ff.name, ErrInjectedSync)
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	verdict, _, _ := ff.fs.op(nil)
	if verdict != opOK {
		return fmt.Errorf("truncate %s: %w", ff.name, ErrCrashed)
	}
	return ff.inner.Truncate(size)
}

// Close always reaches the real file so tests never leak descriptors.
func (ff *faultFile) Close() error { return ff.inner.Close() }
