package fault

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/trace"
)

func matrixMeta() *metadata.Metadata {
	return metadata.NewSynthetic(1, "crash matrix", "BBC", "durability fixture",
		8*4096, 4096, simtime.At(0, 0), simtime.Days(3), []byte("k"))
}

// matrixRecords is the canonical append sequence the crash matrix
// replays: metadata, its eight pieces, credit and quarantine events.
func matrixRecords() []store.Record {
	m := matrixMeta()
	recs := []store.Record{
		&store.MetadataRecord{Popularity: 0.5, Meta: *m, Selected: true},
	}
	for i := 0; i < 8; i++ {
		recs = append(recs, &store.PieceRecord{URI: m.URI, Index: i, Total: 8})
		recs = append(recs, &store.CreditRecord{Peer: trace.NodeID(2), Delta: 5})
	}
	recs = append(recs, &store.QuarantineRecord{Peer: 9, Strikes: 1, UntilUnixMilli: 5000})
	return recs
}

// applyAll folds records[:k] into a fresh state.
func applyAll(recs []store.Record, k int) *store.State {
	st := store.NewState()
	for _, r := range recs[:k] {
		st.Apply(r)
	}
	return st
}

// equalState compares the observable state fields.
func equalState(a, b *store.State) bool {
	if len(a.Files) != len(b.Files) || len(a.Credit) != len(b.Credit) || len(a.Quarantine) != len(b.Quarantine) {
		return false
	}
	for uri, fa := range a.Files {
		fb := b.Files[uri]
		if fb == nil || fa.Total != fb.Total || fa.Selected != fb.Selected || fa.Popularity != fb.Popularity {
			return false
		}
		if (fa.Meta == nil) != (fb.Meta == nil) {
			return false
		}
		if fa.Meta != nil && fa.Meta.Signature != fb.Meta.Signature {
			return false
		}
		for i := range fa.Have {
			if fa.Have[i] != fb.Have[i] {
				return false
			}
		}
	}
	for p, c := range a.Credit {
		if b.Credit[p] != c {
			return false
		}
	}
	for p, q := range a.Quarantine {
		if b.Quarantine[p] != q {
			return false
		}
	}
	return true
}

// TestCrashPointMatrix is the store-level recovery sweep: the canonical
// record sequence is appended against a filesystem that crashes at op
// N, for every N up to the fault-free op count — hitting every write,
// fsync, snapshot rename, directory sync, and WAL reset the store ever
// performs, including mid-append torn writes and mid-compaction
// crashes. After each crash the directory is reopened on a clean
// filesystem and two invariants must hold:
//
//  1. every record whose Append returned nil before the crash is
//     recovered (acknowledged means durable), and
//  2. the recovered state equals the canonical sequence replayed to
//     some prefix length k >= the acknowledged count (consistent
//     prefix: the only extra record that may appear is the one being
//     appended when the crash hit, if its frame landed whole).
func TestCrashPointMatrix(t *testing.T) {
	recs := matrixRecords()
	// CompactEvery well under one run's WAL growth so snapshots (and
	// their rename/syncdir/reset windows) happen mid-sequence.
	const compactEvery = 700

	// Fault-free run to size the op clock.
	probe := WrapFS(store.OSFS{}, FSConfig{Seed: 1})
	s, err := store.Open(store.Options{Dir: t.TempDir(), FS: probe, CompactEvery: compactEvery})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	totalOps := probe.Stats().Ops
	if totalOps < int64(len(recs))*2 {
		t.Fatalf("op probe saw only %d ops", totalOps)
	}
	if probe.Stats().Renames == 0 {
		t.Fatalf("no snapshot rename in the probe run; compaction never fired: %+v", probe.Stats())
	}

	for crashAt := int64(1); crashAt <= totalOps; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("op%03d", crashAt), func(t *testing.T) {
			dir := t.TempDir()
			ffs := WrapFS(store.OSFS{}, FSConfig{Seed: uint64(crashAt) * 77, CrashAtOp: crashAt})
			acked := 0
			s, err := store.Open(store.Options{Dir: dir, FS: ffs, CompactEvery: compactEvery})
			if err == nil {
				for _, r := range recs {
					if err := s.Append(r); err != nil {
						break
					}
					acked++
				}
				s.Close() // best effort on a dying filesystem
			}
			if !ffs.Crashed() {
				t.Fatalf("crash point %d never reached (acked %d)", crashAt, acked)
			}

			r, err := store.Open(store.Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after crash at op %d: %v", crashAt, err)
			}
			defer r.Close()
			got := r.State()

			// Invariant: recovered == canonical prefix of length k, with
			// acked <= k <= acked+1.
			matched := -1
			for k := acked; k <= acked+1 && k <= len(recs); k++ {
				if equalState(got, applyAll(recs, k)) {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("crash at op %d: recovered state is not a consistent prefix (acked %d): %+v",
					crashAt, acked, r.Stats().Recovery)
			}
		})
	}
}

// TestShortWriteRepair: a short write fails the append, but the store
// truncates the torn bytes back off and the next append lands cleanly —
// no record is lost, none is duplicated, and the log replays.
func TestShortWriteRepair(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(store.OSFS{}, FSConfig{Seed: 3, ShortWrite: 0.5})
	s, err := store.Open(store.Options{Dir: dir, FS: ffs, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := matrixMeta()
	acked := 0
	for i := 0; i < 8; i++ {
		// Retry each record until it lands, like a daemon leaning on the
		// protocol's re-drive would.
		for try := 0; try < 20; try++ {
			if err := s.Append(&store.PieceRecord{URI: m.URI, Index: i, Total: 8}); err == nil {
				acked++
				break
			} else if errors.Is(err, store.ErrBroken) {
				t.Fatalf("store broke on a repairable short write: %v", err)
			}
		}
	}
	if acked != 8 {
		t.Fatalf("acked %d/8 pieces", acked)
	}
	if ffs.Stats().ShortWrites == 0 {
		t.Fatal("no short writes injected at 50%")
	}
	s.Close() // may compact; either source must replay all 8 records
	r, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.Stats().Recovery
	if rs.SnapshotRecords+rs.WALRecords != 8 || rs.TornBytes != 0 {
		t.Fatalf("recovery after short-write storm = %+v, want 8 clean records", rs)
	}
	if f := r.State().Files[m.URI]; f == nil || f.HaveCount() != 8 {
		t.Fatalf("pieces lost to short writes: %+v", f)
	}
}

// TestSyncFailureBreaksSafely: when fsync fails and the repair's fsync
// fails too, the store refuses further appends instead of burying good
// records behind a possibly-torn tail.
func TestSyncFailureBreaksSafely(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(store.OSFS{}, FSConfig{Seed: 4, SyncFail: 1})
	s, err := store.Open(store.Options{Dir: dir, FS: ffs, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := matrixMeta()
	if err := s.Append(&store.PieceRecord{URI: m.URI, Index: 0, Total: 8}); err == nil {
		t.Fatal("append succeeded with every fsync failing")
	} else if !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("want injected sync error, got %v", err)
	}
	if err := s.Append(&store.PieceRecord{URI: m.URI, Index: 1, Total: 8}); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("second append after unrepaired sync failure: %v, want ErrBroken", err)
	}
	if ffs.Stats().SyncFails == 0 {
		t.Fatal("no sync failures counted")
	}
}

// TestCrashedFSRefusesEverything pins the fail-stop contract.
func TestCrashedFSRefusesEverything(t *testing.T) {
	ffs := WrapFS(store.OSFS{}, FSConfig{Seed: 5, CrashAtOp: 1})
	dir := t.TempDir()
	s, err := store.Open(store.Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	m := matrixMeta()
	if err := s.Append(&store.PieceRecord{URI: m.URI, Index: 0, Total: 8}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first op: %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() false after the crash op")
	}
	if _, err := ffs.OpenFile(dir+"/x", 0, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if err := ffs.Rename(dir+"/a", dir+"/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
}
