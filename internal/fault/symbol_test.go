package fault

import (
	"context"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// symbolLanePair joins a sender and receiver to a loopback symbol
// domain and wraps the sender's endpoint with the injector.
func symbolLanePair(t *testing.T, cfg Config) (tx transport.SymbolConn, rx transport.SymbolConn, ft *Transport) {
	t.Helper()
	n := transport.NewLoopback()
	ft = Wrap(n, cfg)
	d := n.SymbolDomain("g")
	raw, err := d.Join("tx")
	if err != nil {
		t.Fatal(err)
	}
	rx, err = d.Join("rx")
	if err != nil {
		t.Fatal(err)
	}
	return ft.WrapSymbols(raw), rx, ft
}

func laneSymbol(idx uint32) *wire.Symbol {
	s := &wire.Symbol{
		From: 1, Round: 1, URI: "dtn://files/1", Piece: 0, Total: 2,
		Seed: 7, DataLen: 64, Index: idx, Payload: []byte("0123456789abcdef"),
	}
	s.Seal()
	return s
}

// drainSymbols collects everything currently deliverable on the lane.
func drainSymbols(t *testing.T, rx transport.SymbolConn) []*wire.Symbol {
	t.Helper()
	var out []*wire.Symbol
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		m, err := rx.Recv(ctx)
		cancel()
		if err != nil {
			return out
		}
		out = append(out, m.(*wire.Symbol))
	}
}

// TestSymbolLossRate: the configured per-datagram loss shows up at
// about the configured rate, deterministically for a fixed seed.
func TestSymbolLossRate(t *testing.T) {
	const sends = 500
	run := func() (delivered []uint32, st Stats) {
		tx, rx, ft := symbolLanePair(t, Config{Seed: 5, SymbolLoss: 0.3})
		ctx := context.Background()
		for i := uint32(0); i < sends; i++ {
			if err := tx.Send(ctx, laneSymbol(i)); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range drainSymbols(t, rx) {
			delivered = append(delivered, s.Index)
		}
		return delivered, ft.Stats()
	}
	a, stA := run()
	b, stB := run()
	if len(a) != len(b) {
		t.Fatalf("deliveries differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery pattern diverged at %d", i)
		}
	}
	if stA.SymbolsLost != stB.SymbolsLost || stA.SymbolsLost == 0 {
		t.Fatalf("lost counters: %d vs %d", stA.SymbolsLost, stB.SymbolsLost)
	}
	rate := float64(stA.SymbolsLost) / sends
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("loss rate %.2f, want ≈0.3", rate)
	}
	if stA.SymbolsSent != sends || stA.SymbolsDelivered != sends-stA.SymbolsLost {
		t.Fatalf("counter mismatch: %+v", stA)
	}
}

// TestSymbolLossIndependentStream: turning symbol loss on must not
// change the conn-level fault decisions for the same master seed —
// the lane draws from its own stream.
func TestSymbolLossIndependentStream(t *testing.T) {
	deliveredFrames := func(symLoss float64) uint64 {
		n := transport.NewLoopback()
		ft := Wrap(n, Config{Seed: 11, Drop: 0.5, SymbolLoss: symLoss})
		l, err := ft.Listen("srv")
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		go func() {
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			for {
				if _, err := c.Recv(ctx); err != nil {
					return
				}
			}
		}()
		c, err := ft.Dial(ctx, "srv")
		if err != nil {
			t.Fatal(err)
		}
		// Exercise the lane RNG too, so interleaving would surface.
		sym := ft.WrapSymbols(nopSymbolConn{})
		for i := 0; i < 200; i++ {
			if err := c.Send(ctx, &wire.Hello{From: 1}); err != nil {
				t.Fatal(err)
			}
			sym.Send(ctx, laneSymbol(uint32(i)))
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if st := ft.Stats(); st.Sent == 200 && st.Delivered+st.Dropped == 200 {
				return st.Delivered
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("fault pump did not settle")
		return 0
	}
	if a, b := deliveredFrames(0), deliveredFrames(0.9); a != b {
		t.Fatalf("symbol loss changed conn fault stream: %d vs %d delivered", a, b)
	}
}

// nopSymbolConn swallows sends; the lane target for stream-isolation
// tests.
type nopSymbolConn struct{}

func (nopSymbolConn) Send(context.Context, wire.Msg) error { return nil }
func (nopSymbolConn) Recv(ctx context.Context) (wire.Msg, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (nopSymbolConn) Close() error { return nil }
func (nopSymbolConn) Addr() string { return "nop" }

// TestSymbolCorruption: corrupted datagrams either vanish (framing
// broke) or arrive failing their payload check — receivers must see
// the corruption via CheckOK, never a decoder teardown.
func TestSymbolCorruption(t *testing.T) {
	const sends = 300
	tx, rx, ft := symbolLanePair(t, Config{Seed: 9, Corrupt: 1.0})
	ctx := context.Background()
	for i := uint32(0); i < sends; i++ {
		if err := tx.Send(ctx, laneSymbol(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := ft.Stats()
	if st.SymbolsCorruptDelivered+st.SymbolsCorruptLost != sends {
		t.Fatalf("corruption accounting: %+v", st)
	}
	got := drainSymbols(t, rx)
	badCheck := 0
	for _, s := range got {
		if !s.CheckOK() {
			badCheck++
		}
	}
	// A 1–4 byte flip can land in fields outside the check's coverage
	// (From, URI bytes of equal length, ...), but most mutations hit
	// the payload or placement; require a healthy majority caught.
	if badCheck < len(got)/2 {
		t.Fatalf("only %d/%d corrupted symbols failed CheckOK", badCheck, len(got))
	}
}

// TestSymbolPartition: an active partition silences the lane.
func TestSymbolPartition(t *testing.T) {
	tx, rx, ft := symbolLanePair(t, Config{
		Seed:     3,
		Schedule: []Event{{At: 0, Partition: true}},
	})
	ctx := context.Background()
	for i := uint32(0); i < 10; i++ {
		if err := tx.Send(ctx, laneSymbol(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainSymbols(t, rx); len(got) != 0 {
		t.Fatalf("%d datagrams crossed a partition", len(got))
	}
	if st := ft.Stats(); st.SymbolsPartitionDropped != 10 {
		t.Fatalf("partition drops: %+v", st)
	}
}

func TestParseSpecSymLoss(t *testing.T) {
	cfg, err := ParseSpec("seed=7,symloss=0.25,drop=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SymbolLoss != 0.25 || cfg.Drop != 0.1 || cfg.Seed != 7 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := ParseSpec("symloss=1.5"); err == nil {
		t.Fatal("rate above 1 accepted")
	}
	if _, err := ParseSpec("symloss=x"); err == nil {
		t.Fatal("non-numeric rate accepted")
	}
}
