package fault

import (
	"context"
	"sync"

	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/wire"
)

// WrapSymbols decorates a symbol-lane endpoint with the injector's
// datagram faults, sharing the Transport's partition schedule and
// stats but drawing from its own RNG stream (derived from the master
// seed), so shaping the lane never perturbs the frame-level fault
// sequences of the wrapped conns.
//
// Datagram faults are simpler than conn faults because the lane's
// contract is already "may be lost": SymbolLoss drops each outgoing
// datagram independently, an active partition drops everything, and a
// Corrupt roll mutates the frame and delivers it only if it still
// decodes — a corrupted datagram that no longer parses is just loss,
// never a reason to tear the lane down. Delivered-but-corrupt symbols
// are the interesting case: they parse, fail wire.Symbol's payload
// check at the receiver, and must not poison its decoder.
func (t *Transport) WrapSymbols(inner transport.SymbolConn) transport.SymbolConn {
	// Stream 0 is the dial RNG and conn streams start at 1, so key the
	// lane's stream far away from the conn-counter sequence.
	return &symbolConn{
		t:     t,
		inner: inner,
		rng:   rng.New(t.cfg.Seed ^ 0x5CA1AB1E5CA1AB1E),
	}
}

// symbolConn is one fault-shaped symbol-lane endpoint.
type symbolConn struct {
	t     *Transport
	inner transport.SymbolConn

	mu  sync.Mutex // Send is any-goroutine; the RNG stream is not
	rng *rng.Rand
}

func (c *symbolConn) Send(ctx context.Context, m wire.Msg) error {
	cfg := &c.t.cfg
	c.t.addStat(func(s *Stats) { s.SymbolsSent++ })
	if c.t.Partitioned() {
		c.t.addStat(func(s *Stats) { s.SymbolsPartitionDropped++ })
		return nil
	}
	c.mu.Lock()
	lost := c.rng.Bool(cfg.SymbolLoss)
	corrupt := !lost && c.rng.Bool(cfg.Corrupt)
	var mutated wire.Msg
	if corrupt {
		frame := CorruptFrame(c.rng, wire.Encode(m))
		mutated, _ = wire.Decode(frame)
	}
	c.mu.Unlock()
	if lost {
		c.t.addStat(func(s *Stats) { s.SymbolsLost++ })
		return nil
	}
	if corrupt {
		if mutated == nil {
			// The mutation broke framing; on a datagram lane that is
			// indistinguishable from loss.
			c.t.addStat(func(s *Stats) { s.SymbolsCorruptLost++ })
			return nil
		}
		c.t.addStat(func(s *Stats) { s.SymbolsCorruptDelivered++ })
		m = mutated
	}
	if err := c.inner.Send(ctx, m); err != nil {
		return err
	}
	c.t.addStat(func(s *Stats) { s.SymbolsDelivered++ })
	return nil
}

func (c *symbolConn) Recv(ctx context.Context) (wire.Msg, error) { return c.inner.Recv(ctx) }
func (c *symbolConn) Close() error                               { return c.inner.Close() }
func (c *symbolConn) Addr() string                               { return c.inner.Addr() }
