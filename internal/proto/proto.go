// Package proto implements the full message-level protocol stack of
// §III-B–§V, the "non-simplified" counterpart of the simulation kernel in
// the discovery and download packages.
//
// A session among co-located nodes proceeds exactly as the paper
// describes:
//
//  1. Hello rounds — every member broadcasts an encoded hello beacon each
//     second; after two rounds everyone knows its neighbours and its
//     neighbours' neighbours.
//  2. Clique agreement — each member independently computes the maximal
//     cliques of the overheard graph (Bron–Kerbosch) and elects the
//     coordinator; the session proceeds only if all members agree.
//  3. Discovery phase — metadata records travel as encoded wire messages;
//     receivers validate the record and check the publisher signature
//     before storing.
//  4. Download phase — file pieces travel as encoded wire messages;
//     receivers check the piece against the SHA-1 checksum in their
//     stored metadata before storing.
//
// Scheduling follows the same two-phase rules as the simulation kernel
// (most-requested first, popularity tie-break, popularity-ordered
// pushes), so on an ideal channel the two implementations produce
// identical outcomes — a cross-validation the tests assert.
package proto

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/clique"
	"repro/internal/hello"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ContentSource supplies piece bytes for files a sender holds. The
// default synthesizes deterministic content whose hashes match the
// published metadata (see metadata.SyntheticPiece); a real deployment
// would read from disk.
type ContentSource interface {
	Piece(uri metadata.URI, index, length int) []byte
}

// SyntheticContent is the default ContentSource.
type SyntheticContent struct{}

// Piece generates the deterministic content of one piece.
func (SyntheticContent) Piece(uri metadata.URI, index, length int) []byte {
	return metadata.SyntheticPiece(uri, index, length)
}

// Config controls one message-level session.
type Config struct {
	// MetadataBudget and PieceBudget bound the data broadcasts.
	MetadataBudget int
	PieceBudget    int
	// QueryDistribution includes cached frequent-contact queries in the
	// demand (MBT).
	QueryDistribution bool
	// SkipQueryLearning leaves frequent-contact query caching to the
	// caller (which may know exact query expiries); by default the hello
	// phase caches peers' queries itself under QueryDistribution.
	SkipQueryLearning bool
	// Piggyback attaches metadata to each piece message (MBT-QM).
	Piggyback bool
	// AutoSelect marks files for download as soon as metadata matching a
	// member's own query is stored (the simulated user intervention).
	AutoSelect bool
	// Keys resolves a publisher name to its key so receivers can verify
	// metadata signatures. nil disables signature checking.
	Keys func(publisher string) []byte
	// Content supplies piece bytes; nil means SyntheticContent.
	Content ContentSource
	// Corrupt, if set, may mutate each encoded message before delivery
	// (failure injection). It receives the message type and the encoded
	// bytes and returns the bytes actually "received".
	Corrupt func(t wire.MsgType, b []byte) []byte
}

// Report summarizes one session.
type Report struct {
	// Clique is the agreed member set; Coordinator its elected leader.
	Clique      []trace.NodeID
	Coordinator trace.NodeID
	// Message and byte counters per phase.
	HelloMessages    int
	HelloBytes       int
	MetadataMessages int
	MetadataBytes    int
	PieceMessages    int
	PieceBytes       int
	// VerifyFailures counts messages rejected by receivers (bad
	// signature, bad checksum, undecodable).
	VerifyFailures int
	// MetadataDelivered and PiecesDelivered count new receiver-side
	// stores.
	MetadataDelivered int
	PiecesDelivered   int
	// Completions lists (node, uri) pairs whose wanted download
	// completed during the session.
	Completions []Completion
}

// Completion records one finished download.
type Completion struct {
	Node trace.NodeID
	URI  metadata.URI
}

// Errors.
var (
	ErrTooFewMembers = errors.New("proto: session needs at least two members")
	ErrNoAgreement   = errors.New("proto: members disagree on the clique")
)

// RunSession executes the message-level protocol among members at now.
// Member state is updated in place through decoded, verified messages
// only.
func RunSession(now simtime.Time, members []*node.Node, cfg Config) (*Report, error) {
	if len(members) < 2 {
		return nil, ErrTooFewMembers
	}
	if cfg.Content == nil {
		cfg.Content = SyntheticContent{}
	}
	rep := &Report{}

	cliqueIDs, coord, err := helloPhase(now, members, rep, cfg)
	if err != nil {
		return nil, err
	}
	rep.Clique = cliqueIDs
	rep.Coordinator = coord

	discoveryPhase(now, members, rep, cfg)
	if cfg.AutoSelect {
		autoSelect(now, members)
	}
	downloadPhase(now, members, rep, cfg)
	return rep, nil
}

// helloPhase runs two beacon rounds and verifies clique agreement.
func helloPhase(now simtime.Time, members []*node.Node, rep *Report, cfg Config) ([]trace.NodeID, trace.NodeID, error) {
	tables := make(map[trace.NodeID]*hello.Table, len(members))
	for _, m := range members {
		tables[m.ID] = hello.NewTable()
	}
	heard := make(map[trace.NodeID][]trace.NodeID, len(members))

	for round := 0; round < 2; round++ {
		at := now.Add(simtime.Duration(round) * hello.Interval)
		for _, sender := range members {
			msg := &wire.Hello{
				From:        sender.ID,
				Heard:       heard[sender.ID],
				Queries:     sender.Queries(at),
				Downloading: sender.WantedIncomplete(),
			}
			b := wire.EncodeHello(msg)
			rep.HelloMessages++
			rep.HelloBytes += len(b)
			if cfg.Corrupt != nil {
				b = cfg.Corrupt(wire.TypeHello, b)
			}
			decoded, err := wire.DecodeHello(b)
			if err != nil {
				rep.VerifyFailures++
				continue
			}
			for _, receiver := range members {
				if receiver.ID == sender.ID {
					continue
				}
				tables[receiver.ID].Observe(at, hello.Message{
					From:        decoded.From,
					Heard:       decoded.Heard,
					Queries:     decoded.Queries,
					Downloading: decoded.Downloading,
				})
				// MBT: cache the queries of frequent contacts. The
				// hello does not carry expiries; receivers bound the
				// cache entry by the longest file TTL they could care
				// about — here, the end of the session's day plus the
				// metadata they later verify. We use a conservative
				// one-week horizon.
				if cfg.QueryDistribution && !cfg.SkipQueryLearning {
					receiver.LearnPeerQueries(decoded.From, decoded.Queries,
						at.Add(7*simtime.Day))
				}
			}
		}
		for _, m := range members {
			heard[m.ID] = tables[m.ID].Neighbors(at)
		}
	}

	// Clique agreement: every member computes its maximal cliques and
	// must find the same full-session clique and coordinator.
	after := now.Add(2 * hello.Interval)
	var agreed []trace.NodeID
	for _, m := range members {
		graph := tables[m.ID].Graph(after, m.ID)
		cliques := clique.MaximalCliques(graph)
		mine := clique.Containing(cliques, m.ID)
		if len(mine) != 1 {
			return nil, -1, fmt.Errorf("node %d sees %d cliques: %w", m.ID, len(mine), ErrNoAgreement)
		}
		if agreed == nil {
			agreed = mine[0]
		} else if !equalIDs(agreed, mine[0]) {
			return nil, -1, fmt.Errorf("node %d disagrees: %w", m.ID, ErrNoAgreement)
		}
	}
	if len(agreed) != len(members) {
		return nil, -1, fmt.Errorf("clique %v misses members: %w", agreed, ErrNoAgreement)
	}
	return agreed, clique.Coordinator(agreed), nil
}

func equalIDs(a, b []trace.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// metaCandidate mirrors the discovery scheduler's candidate.
type metaCandidate struct {
	sm         *node.StoredMetadata
	holder     *node.Node
	lackers    []*node.Node
	requesters int
	ownCount   int
}

// discoveryPhase broadcasts metadata as wire messages under the
// coordinator's two-phase order, recomputing after every broadcast.
func discoveryPhase(now simtime.Time, members []*node.Node, rep *Report, cfg Config) {
	for sent := 0; sent < cfg.MetadataBudget; sent++ {
		c := bestMetadata(now, members, cfg)
		if c == nil {
			return
		}
		payload := &wire.Metadata{Popularity: c.sm.Popularity, Record: *c.sm.Meta}
		b := wire.EncodeMetadata(payload)
		rep.MetadataMessages++
		rep.MetadataBytes += len(b)
		if cfg.Corrupt != nil {
			b = cfg.Corrupt(wire.TypeMetadata, b)
		}
		decoded, err := wire.DecodeMetadata(b)
		if err != nil {
			rep.VerifyFailures++
			continue
		}
		if !verifyMetadata(&decoded.Record, cfg) {
			rep.VerifyFailures++
			continue
		}
		for _, m := range c.lackers {
			if m.AddMetadata(&decoded.Record, decoded.Popularity, now) {
				rep.MetadataDelivered++
			}
		}
	}
}

// verifyMetadata runs receiver-side validation: structure and, when a
// keyring is available, the publisher signature.
func verifyMetadata(rec *metadata.Metadata, cfg Config) bool {
	if rec.Validate() != nil {
		return false
	}
	if cfg.Keys != nil {
		key := cfg.Keys(rec.Publisher)
		if key == nil || !rec.Verify(key) {
			return false
		}
	}
	return true
}

// bestMetadata picks the next record per the two-phase rule.
func bestMetadata(now simtime.Time, members []*node.Node, cfg Config) *metaCandidate {
	byURI := make(map[metadata.URI]*metaCandidate)
	for _, m := range members {
		if m.FreeRider {
			continue
		}
		for _, sm := range m.MetadataStore() {
			if sm.Meta.Expired(now) {
				continue
			}
			c := byURI[sm.Meta.URI]
			if c == nil {
				byURI[sm.Meta.URI] = &metaCandidate{sm: sm, holder: m}
			} else if sm.Popularity > c.sm.Popularity {
				c.sm = sm
			}
		}
	}
	var cands []*metaCandidate
	for _, c := range byURI {
		for _, m := range members {
			if m.HasMetadata(c.sm.Meta.URI) {
				continue
			}
			c.lackers = append(c.lackers, m)
			if matchesAny(c.sm.Meta, m.Queries(now)) {
				c.requesters++
				c.ownCount++
			} else if cfg.QueryDistribution && matchesAny(c.sm.Meta, m.PeerQueries(now)) {
				c.requesters++
			}
		}
		if len(c.lackers) > 0 {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.ownCount != b.ownCount {
			return a.ownCount > b.ownCount
		}
		if a.requesters != b.requesters {
			return a.requesters > b.requesters
		}
		if a.sm.Popularity != b.sm.Popularity {
			return a.sm.Popularity > b.sm.Popularity
		}
		return a.sm.Meta.URI < b.sm.Meta.URI
	})
	return cands[0]
}

func matchesAny(rec *metadata.Metadata, queries []string) bool {
	for _, q := range queries {
		if rec.MatchesQuery(q) {
			return true
		}
	}
	return false
}

// autoSelect performs the user's selection on every member.
func autoSelect(now simtime.Time, members []*node.Node) {
	for _, m := range members {
		for _, q := range m.Queries(now) {
			for _, sm := range m.MatchingQuery(q) {
				m.Select(sm.Meta.URI)
			}
		}
	}
}

// pieceCandidate mirrors the download scheduler's candidate.
type pieceCandidate struct {
	uri        metadata.URI
	piece      int
	total      int
	popularity float64
	holder     *node.Node
	lackers    []*node.Node
	requesters int
}

// downloadPhase broadcasts pieces as wire messages under the
// coordinator's two-phase order, verifying checksums receiver-side.
func downloadPhase(now simtime.Time, members []*node.Node, rep *Report, cfg Config) {
	for sent := 0; sent < cfg.PieceBudget; sent++ {
		c := bestPiece(now, members)
		if c == nil {
			return
		}
		length := pieceLength(c, members)
		msg := &wire.Piece{
			URI:   c.uri,
			Index: c.piece,
			Total: c.total,
			Data:  cfg.Content.Piece(c.uri, c.piece, length),
		}
		if cfg.Piggyback {
			if sm := c.holder.Metadata(c.uri); sm != nil {
				msg.Piggyback = &wire.Metadata{Popularity: sm.Popularity, Record: *sm.Meta}
			}
		}
		b := wire.EncodePiece(msg)
		rep.PieceMessages++
		rep.PieceBytes += len(b)
		if cfg.Corrupt != nil {
			b = cfg.Corrupt(wire.TypePiece, b)
		}
		decoded, err := wire.DecodePiece(b)
		if err != nil {
			rep.VerifyFailures++
			continue
		}
		rejected := false
		for _, m := range c.lackers {
			if decoded.Piggyback != nil && verifyMetadata(&decoded.Piggyback.Record, cfg) {
				m.AddMetadata(&decoded.Piggyback.Record, decoded.Piggyback.Popularity, now)
			}
			// Verify against the receiver's own metadata when it has it;
			// otherwise the piece is cached unverified, like a real
			// client caching an unidentified push.
			if sm := m.Metadata(decoded.URI); sm != nil {
				if !decoded.Verify(sm.Meta) {
					rejected = true
					continue
				}
			}
			if m.AddPiece(decoded.URI, decoded.Index, decoded.Total) {
				rep.PiecesDelivered++
				ps := m.Pieces(decoded.URI)
				if ps.Want && ps.Complete() {
					rep.Completions = append(rep.Completions, Completion{Node: m.ID, URI: decoded.URI})
				}
			}
		}
		if rejected {
			rep.VerifyFailures++
		}
	}
}

// pieceLength derives the byte length of the piece from any member's
// metadata, defaulting to a nominal size when nobody can tell.
func pieceLength(c *pieceCandidate, members []*node.Node) int {
	for _, m := range members {
		if sm := m.Metadata(c.uri); sm != nil {
			return sm.Meta.PieceLen(c.piece)
		}
	}
	return 256
}

// bestPiece picks the next piece per the two-phase rule.
func bestPiece(now simtime.Time, members []*node.Node) *pieceCandidate {
	type key struct {
		uri   metadata.URI
		piece int
	}
	totals := make(map[metadata.URI]int)
	pops := make(map[metadata.URI]float64)
	for _, m := range members {
		for _, sm := range m.MetadataStore() {
			if !sm.Meta.Expired(now) {
				totals[sm.Meta.URI] = sm.Meta.NumPieces()
				if sm.Popularity > pops[sm.Meta.URI] {
					pops[sm.Meta.URI] = sm.Popularity
				}
			}
		}
		for _, uri := range m.PieceURIs() {
			if _, ok := totals[uri]; !ok {
				totals[uri] = m.Pieces(uri).Total()
			}
		}
	}
	byKey := make(map[key]*pieceCandidate)
	for uri, total := range totals {
		for i := 0; i < total; i++ {
			var holder *node.Node
			for _, m := range members {
				if m.FreeRider {
					continue
				}
				if ps := m.Pieces(uri); ps != nil && ps.Have(i) {
					if holder == nil || m.ID < holder.ID {
						holder = m
					}
				}
			}
			if holder == nil {
				continue
			}
			c := &pieceCandidate{
				uri: uri, piece: i, total: total,
				popularity: pops[uri], holder: holder,
			}
			for _, m := range members {
				ps := m.Pieces(uri)
				if ps != nil && ps.Have(i) {
					continue
				}
				c.lackers = append(c.lackers, m)
				if ps != nil && ps.Want {
					c.requesters++
				}
			}
			if len(c.lackers) > 0 {
				byKey[key{uri, i}] = c
			}
		}
	}
	if len(byKey) == 0 {
		return nil
	}
	cands := make([]*pieceCandidate, 0, len(byKey))
	for _, c := range byKey {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.requesters != b.requesters {
			return a.requesters > b.requesters
		}
		if a.popularity != b.popularity {
			return a.popularity > b.popularity
		}
		if a.uri != b.uri {
			return a.uri < b.uri
		}
		return a.piece < b.piece
	})
	return cands[0]
}
