package proto

import (
	"errors"
	"testing"

	"repro/internal/discovery"
	"repro/internal/download"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/wire"
)

var testKeys = map[string][]byte{
	"FOX": []byte("fox-key"),
	"BBC": []byte("bbc-key"),
}

func keyring(publisher string) []byte { return testKeys[publisher] }

func makeMeta(id metadata.FileID, name, publisher string) *metadata.Metadata {
	return metadata.NewSynthetic(id, name, publisher, "desc", 1024, 256,
		0, simtime.Days(3), testKeys[publisher])
}

func expiry() simtime.Time { return simtime.Time(simtime.Days(3)) }

func baseConfig() Config {
	return Config{
		MetadataBudget: 10,
		PieceBudget:    20,
		AutoSelect:     true,
		Keys:           keyring,
	}
}

func TestSessionEndToEnd(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz night", "FOX")
	a.AddMetadata(m, 0.5, 0)
	a.GrantFullFile(m.URI, m.NumPieces())
	b.AddQuery("jazz", expiry())

	rep, err := RunSession(0, []*node.Node{a, b}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clique) != 2 || rep.Coordinator != 0 {
		t.Fatalf("clique %v coordinator %v", rep.Clique, rep.Coordinator)
	}
	if rep.VerifyFailures != 0 {
		t.Fatalf("verify failures = %d", rep.VerifyFailures)
	}
	if !b.HasMetadata(m.URI) {
		t.Fatal("metadata did not travel")
	}
	if !b.HasFullFile(m.URI) {
		t.Fatal("file did not complete")
	}
	if len(rep.Completions) != 1 || rep.Completions[0].Node != 1 {
		t.Fatalf("completions = %v", rep.Completions)
	}
	if rep.HelloMessages != 4 { // 2 members x 2 rounds
		t.Fatalf("hello messages = %d", rep.HelloMessages)
	}
	if rep.MetadataBytes == 0 || rep.PieceBytes == 0 || rep.HelloBytes == 0 {
		t.Fatal("byte counters not populated")
	}
}

func TestSessionBudgets(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	for i := 0; i < 8; i++ {
		a.AddMetadata(makeMeta(metadata.FileID(i), "show", "FOX"), 0.5, 0)
	}
	cfg := baseConfig()
	cfg.MetadataBudget = 3
	cfg.PieceBudget = 0
	rep, err := RunSession(0, []*node.Node{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MetadataMessages != 3 {
		t.Fatalf("metadata messages = %d", rep.MetadataMessages)
	}
	if rep.PieceMessages != 0 {
		t.Fatalf("piece messages = %d", rep.PieceMessages)
	}
}

func TestSessionRejectsSingleton(t *testing.T) {
	if _, err := RunSession(0, []*node.Node{node.New(0, false)}, baseConfig()); !errors.Is(err, ErrTooFewMembers) {
		t.Fatalf("err = %v", err)
	}
}

func TestForgedMetadataRejected(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	forged := makeMeta(1, "fake blockbuster", "FOX")
	forged.Publisher = "BBC" // signature no longer matches claimed publisher
	a.AddMetadata(forged, 0.9, 0)

	rep, err := RunSession(0, []*node.Node{a, b}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifyFailures == 0 {
		t.Fatal("forged metadata accepted")
	}
	if b.HasMetadata(forged.URI) {
		t.Fatal("forged metadata stored")
	}
}

func TestCorruptedPieceRejected(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz", "FOX")
	a.AddMetadata(m, 0.5, 0)
	a.GrantFullFile(m.URI, m.NumPieces())
	b.AddMetadata(m, 0.5, 0)
	b.Select(m.URI)

	cfg := baseConfig()
	cfg.MetadataBudget = 0
	cfg.Corrupt = func(t wire.MsgType, buf []byte) []byte {
		if t != wire.TypePiece {
			return buf
		}
		// Corrupt a byte inside the Data payload.
		out := append([]byte(nil), buf...)
		out[len(out)-20] ^= 0xFF
		return out
	}
	rep, err := RunSession(0, []*node.Node{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifyFailures == 0 {
		t.Fatal("corrupted pieces accepted")
	}
	if b.Pieces(m.URI).Count() != 0 {
		t.Fatalf("receiver stored %d corrupted pieces", b.Pieces(m.URI).Count())
	}
}

func TestUndecodableMessagesCounted(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	a.AddMetadata(makeMeta(1, "x", "FOX"), 0.5, 0)
	cfg := baseConfig()
	cfg.Corrupt = func(t wire.MsgType, buf []byte) []byte {
		if t != wire.TypeMetadata {
			return buf
		}
		return buf[:1]
	}
	rep, err := RunSession(0, []*node.Node{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifyFailures == 0 {
		t.Fatal("truncation not detected")
	}
	if b.HasMetadata("dtn://files/1") {
		t.Fatal("metadata stored from truncated message")
	}
}

func TestFreeRiderNeitherHoldsNorSends(t *testing.T) {
	rider := node.New(0, false)
	rider.FreeRider = true
	b := node.New(1, false)
	hoard := makeMeta(1, "hoard", "FOX")
	rider.AddMetadata(hoard, 0.9, 0)
	rider.GrantFullFile(hoard.URI, hoard.NumPieces())

	rep, err := RunSession(0, []*node.Node{rider, b}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MetadataMessages != 0 || rep.PieceMessages != 0 {
		t.Fatalf("free-rider transmitted: %d metadata, %d pieces",
			rep.MetadataMessages, rep.PieceMessages)
	}
	if b.HasMetadata(hoard.URI) {
		t.Fatal("hoarded metadata leaked")
	}
}

func TestPiggybackDeliversMetadata(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz", "FOX")
	a.AddMetadata(m, 0.5, 0)
	a.GrantFullFile(m.URI, m.NumPieces())

	cfg := baseConfig()
	cfg.MetadataBudget = 0
	cfg.Piggyback = true
	if _, err := RunSession(0, []*node.Node{a, b}, cfg); err != nil {
		t.Fatal(err)
	}
	if !b.HasMetadata(m.URI) {
		t.Fatal("piggybacked metadata not stored")
	}
}

func TestQueryDistributionCachesFrequentContactQueries(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	a.SetFrequent([]trace.NodeID{1})
	b.AddQuery("jazz", expiry())

	cfg := baseConfig()
	cfg.QueryDistribution = true
	if _, err := RunSession(0, []*node.Node{a, b}, cfg); err != nil {
		t.Fatal(err)
	}
	if got := a.PeerQueries(simtime.Time(simtime.Hour)); len(got) != 1 || got[0] != "jazz" {
		t.Fatalf("cached peer queries = %v", got)
	}
}

// TestMatchesSimulationKernel cross-validates the message-level stack
// against the simulation kernel: identical initial states must end in
// identical stores on an ideal channel.
func TestMatchesSimulationKernel(t *testing.T) {
	build := func() []*node.Node {
		a := node.New(0, false)
		b := node.New(1, false)
		c := node.New(2, false)
		for i := 0; i < 6; i++ {
			m := makeMeta(metadata.FileID(i), "show", "FOX")
			a.AddMetadata(m, float64(i)/10, 0)
			if i < 3 {
				a.GrantFullFile(m.URI, m.NumPieces())
			}
		}
		b.AddQuery("f2", expiry())
		c.AddQuery("f4", expiry())
		return []*node.Node{a, b, c}
	}

	// Message-level stack.
	protoNodes := build()
	cfg := baseConfig()
	cfg.MetadataBudget, cfg.PieceBudget = 4, 6
	if _, err := RunSession(0, protoNodes, cfg); err != nil {
		t.Fatal(err)
	}

	// Simulation kernel with the same budgets and selection step.
	kernelNodes := build()
	discovery.Exchange(0, kernelNodes, discovery.Config{Budget: 4})
	autoSelect(0, kernelNodes)
	download.Exchange(0, kernelNodes, download.Config{PieceBudget: 6})

	for i := range protoNodes {
		p, k := protoNodes[i], kernelNodes[i]
		pStore, kStore := p.MetadataStore(), k.MetadataStore()
		if len(pStore) != len(kStore) {
			t.Fatalf("node %d: %d vs %d metadata", i, len(pStore), len(kStore))
		}
		for j := range pStore {
			if pStore[j].Meta.URI != kStore[j].Meta.URI {
				t.Fatalf("node %d: metadata %v vs %v", i, pStore[j].Meta.URI, kStore[j].Meta.URI)
			}
		}
		pURIs, kURIs := p.PieceURIs(), k.PieceURIs()
		if len(pURIs) != len(kURIs) {
			t.Fatalf("node %d: %d vs %d piece sets", i, len(pURIs), len(kURIs))
		}
		for j := range pURIs {
			if pURIs[j] != kURIs[j] {
				t.Fatalf("node %d: piece uri %v vs %v", i, pURIs[j], kURIs[j])
			}
			if p.Pieces(pURIs[j]).Count() != k.Pieces(kURIs[j]).Count() {
				t.Fatalf("node %d uri %v: %d vs %d pieces", i, pURIs[j],
					p.Pieces(pURIs[j]).Count(), k.Pieces(kURIs[j]).Count())
			}
		}
	}
}

func TestLargerCliqueAgreement(t *testing.T) {
	var members []*node.Node
	for i := 0; i < 6; i++ {
		members = append(members, node.New(trace.NodeID(i), false))
	}
	members[0].AddMetadata(makeMeta(1, "x", "FOX"), 0.5, 0)
	rep, err := RunSession(0, members, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clique) != 6 {
		t.Fatalf("clique = %v", rep.Clique)
	}
	if rep.Coordinator != 0 {
		t.Fatalf("coordinator = %v, want lowest ID", rep.Coordinator)
	}
	// One broadcast reaches all five lackers.
	for _, m := range members[1:] {
		if !m.HasMetadata("dtn://files/1") {
			t.Fatalf("member %d missed the broadcast", m.ID)
		}
	}
	if rep.MetadataMessages != 1 {
		t.Fatalf("metadata messages = %d, want a single broadcast", rep.MetadataMessages)
	}
}
