package hybriddtn

// The benchmark harness regenerates the paper's evaluation: one
// Benchmark per figure panel (Figures 2(a)–(e) on the DieselNet-style
// trace, 3(a)–(f) on the NUS-style trace) plus the ablations DESIGN.md
// calls out. Each iteration runs the panel's parameter sweep at reduced
// scale and reports the resulting delivery ratios through b.ReportMetric,
// so `go test -bench . -benchmem` prints the same series the paper plots
// alongside the usual time/op numbers. cmd/experiments produces the
// full-scale tables.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/download"
	"repro/internal/experiment"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/proto"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// benchPanel runs one figure panel per iteration and reports each
// protocol's mean ratios over the sweep.
func benchPanel(b *testing.B, id string, xs []float64) {
	def, err := experiment.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	if xs != nil {
		def.Xs = xs
	}
	var last *experiment.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiment.Run(def, experiment.Options{Seed: 1, Small: true})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.StopTimer()
	reportSeries(b, last)
}

// reportSeries attaches per-protocol mean ratios as custom metrics.
func reportSeries(b *testing.B, s *experiment.Series) {
	if s == nil || len(s.Points) == 0 {
		return
	}
	for _, v := range core.Variants() {
		var meta, file float64
		for _, p := range s.Points {
			meta += p.Cells[v].MetadataRatio
			file += p.Cells[v].FileRatio
		}
		n := float64(len(s.Points))
		b.ReportMetric(meta/n, fmt.Sprintf("%s-meta", v))
		b.ReportMetric(file/n, fmt.Sprintf("%s-file", v))
	}
}

// Figure 2: DieselNet-style trace.

func BenchmarkFig2aInternetAccessDiesel(b *testing.B) {
	benchPanel(b, "fig2a", []float64{0.1, 0.5, 0.9})
}

func BenchmarkFig2bNewFilesDiesel(b *testing.B) {
	benchPanel(b, "fig2b", []float64{10, 50, 100})
}

func BenchmarkFig2cTTLDiesel(b *testing.B) {
	benchPanel(b, "fig2c", []float64{1, 3, 5})
}

func BenchmarkFig2dMetadataPerContactDiesel(b *testing.B) {
	benchPanel(b, "fig2d", []float64{1, 5, 10})
}

func BenchmarkFig2eFilesPerContactDiesel(b *testing.B) {
	benchPanel(b, "fig2e", []float64{1, 5, 10})
}

// Figure 3: NUS-style trace.

func BenchmarkFig3aInternetAccessNUS(b *testing.B) {
	benchPanel(b, "fig3a", []float64{0.1, 0.5, 0.9})
}

func BenchmarkFig3bNewFilesNUS(b *testing.B) {
	benchPanel(b, "fig3b", []float64{10, 50, 100})
}

func BenchmarkFig3cTTLNUS(b *testing.B) {
	benchPanel(b, "fig3c", []float64{1, 3, 5})
}

func BenchmarkFig3dMetadataPerContactNUS(b *testing.B) {
	benchPanel(b, "fig3d", []float64{1, 5, 10})
}

func BenchmarkFig3eFilesPerContactNUS(b *testing.B) {
	benchPanel(b, "fig3e", []float64{1, 5, 10})
}

func BenchmarkFig3fAttendanceNUS(b *testing.B) {
	benchPanel(b, "fig3f", []float64{0.5, 0.75, 1.0})
}

// BenchmarkRunAll measures the run-level worker pool on a multi-seed
// -small sweep of every panel: one worker (the serial baseline) vs one
// per CPU. On a multi-core machine the wall-clock ratio is the pool's
// speedup; the per-run seed derivation keeps both outputs byte-identical.
func BenchmarkRunAll(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			opts := experiment.Options{Seed: 1, Seeds: 2, Small: true, Workers: workers}
			for i := 0; i < b.N; i++ {
				series, err := experiment.RunAll(opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(series) != len(experiment.Definitions()) {
					b.Fatalf("panels = %d", len(series))
				}
			}
		})
	}
}

// §V capacity claim: broadcast per-node capacity grows with clique size
// n as (n-1)/n while pair-wise capacity shrinks as 1/n.

func BenchmarkCapacityBroadcastVsPairwise(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 64; n++ {
			sink += download.BroadcastPerNodeCapacity(n)
			sink -= download.PairwisePerNodeCapacity(n)
		}
	}
	b.StopTimer()
	_ = sink
	for _, n := range []int{2, 8, 32} {
		b.ReportMetric(download.BroadcastPerNodeCapacity(n), fmt.Sprintf("bcast-n%d", n))
		b.ReportMetric(download.PairwisePerNodeCapacity(n), fmt.Sprintf("pair-n%d", n))
	}
}

// benchScenario runs one simulation config per iteration and reports its
// ratios. mutate customizes the default small campus scenario.
func benchScenario(b *testing.B, mutate func(*core.Config)) {
	nus := DefaultNUSTrace()
	nus.Students, nus.Classes, nus.Days = 60, 12, 7
	tr, err := NUSTrace(nus)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(tr)
	cfg.Workload.NewFilesPerDay = 20
	cfg.FrequentContactsPerDay = 0.25
	mutate(&cfg)

	var last *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(last.MetadataRatio, "meta-ratio")
		b.ReportMetric(last.FileRatio, "file-ratio")
	}
}

// Ablation: tit-for-tat with free-riders vs cooperative (§IV-B, §V-B).

func BenchmarkAblationTitForTat(b *testing.B) {
	for _, tt := range []struct {
		name   string
		tft    bool
		riders float64
	}{
		{"cooperative", false, 0},
		{"tft-honest", true, 0},
		{"tft-30pct-riders", true, 0.3},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) {
				cfg.TitForTat = tt.tft
				cfg.FreeRiderFraction = tt.riders
			})
		})
	}
}

// Ablation: coordinator schedule vs TFT cyclic order (§V-A vs §V-B).

func BenchmarkAblationScheduler(b *testing.B) {
	for _, tt := range []struct {
		name string
		tft  bool
	}{
		{"coordinator", false},
		{"cyclic-tft", true},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) { cfg.TitForTat = tt.tft })
		})
	}
}

// Ablation: two-phase request-aware ordering vs popularity-only pushes
// (§IV-A phase 1).

func BenchmarkAblationOrdering(b *testing.B) {
	for _, tt := range []struct {
		name    string
		popOnly bool
	}{
		{"two-phase", false},
		{"popularity-only", true},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) {
				cfg.PopularityOnlyOrdering = tt.popOnly
				cfg.MetadataPerContact = 2 // scarcity separates the orderings
			})
		})
	}
}

// Ablation: query distribution on/off at fixed budget (MBT vs MBT-Q is
// the protocol-level version; this isolates the mechanism).

func BenchmarkAblationQueryDistribution(b *testing.B) {
	for _, tt := range []struct {
		name    string
		variant core.Variant
	}{
		{"with-query-distribution", core.MBT},
		{"without", core.MBTQ},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) { cfg.Variant = tt.variant })
		})
	}
}

// Substrate benches: DTN unicast routing protocols over the bus trace
// (delivery ratio and overhead reported per protocol), and the full
// message-level protocol session.

func BenchmarkRoutingProtocols(b *testing.B) {
	d := DefaultDieselTrace()
	d.Buses, d.Routes, d.Days = 20, 4, 7
	tr, err := DieselTrace(d)
	if err != nil {
		b.Fatal(err)
	}
	msgs := routing.GenerateWorkload(tr, 100, simtime.Days(2), 1)
	for _, p := range routing.All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			var last *routing.Result
			for i := 0; i < b.N; i++ {
				res, err := routing.Simulate(routing.Config{
					Trace: tr, Messages: msgs, Protocol: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if last != nil {
				b.ReportMetric(last.Ratio, "delivery")
				b.ReportMetric(last.Overhead, "overhead")
			}
		})
	}
}

func BenchmarkProtoSession(b *testing.B) {
	run := func(b *testing.B, members int) {
		var last *proto.Report
		for i := 0; i < b.N; i++ {
			nodes := make([]*node.Node, members)
			for j := range nodes {
				nodes[j] = node.New(trace.NodeID(j), false)
			}
			key := []byte("k")
			for f := 0; f < 10; f++ {
				m := metadata.NewSynthetic(metadata.FileID(f), "show", "FOX",
					"desc", 4096, 1024, 0, simtime.Days(3), key)
				nodes[0].AddMetadata(m, float64(f)/10, 0)
				nodes[0].GrantFullFile(m.URI, m.NumPieces())
			}
			rep, err := proto.RunSession(0, nodes, proto.Config{
				MetadataBudget: 5,
				PieceBudget:    10,
				AutoSelect:     true,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = rep
		}
		b.StopTimer()
		if last != nil {
			totalBytes := last.HelloBytes + last.MetadataBytes + last.PieceBytes
			b.ReportMetric(float64(totalBytes), "bytes-on-air")
		}
	}
	for _, members := range []int{2, 8, 24} {
		members := members
		b.Run(fmt.Sprintf("clique-%d", members), func(b *testing.B) { run(b, members) })
	}
}

// Ablation: encrypted choking (footnote-1 extension) under free-riders.

func BenchmarkAblationChoking(b *testing.B) {
	for _, tt := range []struct {
		name      string
		minCredit float64
	}{
		{"tft-no-choking", 0},
		{"tft-choked", 0.5},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) {
				cfg.TitForTat = true
				cfg.FreeRiderFraction = 0.3
				cfg.ChokeMinCredit = tt.minCredit
				cfg.ChokeOptimisticEvery = 5
			})
		})
	}
}

// Ablation: storage caps vs unlimited stores.

func BenchmarkAblationStorageCaps(b *testing.B) {
	for _, tt := range []struct {
		name           string
		metaCap, cache int
	}{
		{"unlimited", 0, 0},
		{"capped", 60, 4},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) {
				cfg.MetadataCapacity = tt.metaCap
				cfg.PieceCacheCapacity = tt.cache
			})
		})
	}
}

// Ablation: lossy wireless channel.

func BenchmarkAblationLoss(b *testing.B) {
	for _, tt := range []struct {
		name string
		loss float64
	}{
		{"clean", 0},
		{"loss-25pct", 0.25},
		{"loss-50pct", 0.5},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) { cfg.BroadcastLossRate = tt.loss })
		})
	}
}

// Ablation: the paper's truncated-exponential popularity model vs a
// heavy-tailed Zipf catalog.

func BenchmarkAblationPopularityModel(b *testing.B) {
	for _, tt := range []struct {
		name  string
		alpha float64
	}{
		{"exponential-paper", 0},
		{"zipf-0.8", 0.8},
	} {
		b.Run(tt.name, func(b *testing.B) {
			benchScenario(b, func(cfg *core.Config) {
				cfg.Workload.ZipfAlpha = tt.alpha
			})
		})
	}
}
