# Repo verification targets. `make check` is the gate: vet + full tests
# + the race detector over the concurrent sweep pool.

GO ?= go

.PHONY: check vet test race short bench bench-json fuzz chaos chaos-short bcast-soak bcast-soak-short crash-soak crash-soak-short swarm swarm-short fec-soak fec-soak-short dht-soak dht-soak-short overload-soak overload-soak-short

check: vet test race

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick loop: skips the full -small sweep tests.
short:
	$(GO) test -short ./...

# Chaos soak: two daemons over the fault injector (30% drop, 20%
# corruption, a scripted 10 s partition) must still complete a download,
# race-clean. chaos-short shrinks the partition for a quick smoke.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault' -v ./internal/daemon ./cmd/mbtd

chaos-short:
	$(GO) test -race -count=1 -short -run Chaos -v ./internal/daemon

# Broadcast-group soak: three nodes on the loopback broadcast domain
# under 20% drop chaos plus a scripted partition must confirm a group,
# collapse, re-form, and still complete the shared download — plus the
# transmission-savings comparison and the live TCP demo. bcast-soak-short
# shrinks the partition for a quick smoke.
bcast-soak:
	$(GO) test -race -count=1 -run 'Bcast|LocalhostBcastDemo' -v ./internal/daemon ./cmd/mbtd

bcast-soak-short:
	$(GO) test -race -count=1 -short -run TestBcastSoak -v ./internal/daemon

# Fountain-coded soak: the LT-code property tests, the engine's symbol
# plane (negotiation, loss repair, relay budget, poisoned-decode
# restart), the five-node chaos soak at 30% drop + 20% corruption, and
# the live three-daemon UDP demo. fec-soak-short is the race-clean CI
# smoke: the chaos soak must complete on the fountain plane (the strict
# transmission comparison runs without -race, where timing is honest).
fec-soak:
	$(GO) test -count=1 -run 'FEC' -v ./internal/fec ./internal/bcast ./internal/daemon
	$(GO) test -race -count=1 -run 'FEC|LocalhostFECDemo' -v ./internal/fec ./internal/bcast ./internal/daemon ./cmd/mbtd

fec-soak-short:
	$(GO) test -race -count=1 -run 'TestFECSoakFewerTransmissions|TestFECLossRepairedByTopUps' -v ./internal/daemon ./internal/bcast

# DHT soak: the full Kademlia suite — k-bucket/store property tests and
# lookup-convergence meshes in internal/dht, the daemon's server-death
# resolution and dial-on-demand tests, the discovery<->DHT seam
# (fallback without double counting), the swarm server-death scenario
# against its no-DHT baseline, and the live three-daemon localhost demo
# where the catalog server is killed mid-run. dht-soak-short is the
# race-clean CI smoke: the engine suite plus the daemon and seam tests.
dht-soak:
	$(GO) test -race -count=1 -v ./internal/dht
	$(GO) test -race -count=1 -timeout 10m -run 'DHT' -v ./internal/daemon ./internal/discovery ./internal/swarm ./cmd/mbtd
	$(GO) test -race -count=1 -run 'TestFountainScenario' -v ./internal/swarm

dht-soak-short:
	$(GO) test -race -count=1 ./internal/dht
	$(GO) test -race -count=1 -run 'TestDHT' -v ./internal/daemon ./internal/discovery

# Crash-recovery soak: the store-level crash-point matrix (every
# mutating filesystem op) plus the daemon-level scripted kill-and-
# restart matrix — at each point the node must reopen its data dir to a
# consistent prefix, resume the download, and never be re-sent a
# persisted piece. crash-soak-short trims the daemon matrix to the
# first append and the first snapshot commit.
crash-soak:
	$(GO) test -race -count=1 -run 'TestCrashPointMatrix|TestShortWriteRepair|TestCrashRecoverySoak|TestRestartResume|TestLocalhostRestartDemo' -v ./internal/fault ./internal/daemon ./cmd/mbtd

crash-soak-short:
	$(GO) test -race -count=1 -short -run 'TestCrashRecoverySoak|TestRestartResume' -v ./internal/daemon

# Swarm availability soak: the full thousand-node boot plus every
# scripted-churn scenario (seeder death, flash crowd, mobility
# partitions, staggered joins, diurnal attendance), emitting metrics
# JSON into results/. swarm-short is the race-clean CI smoke at <=200
# nodes.
swarm:
	$(GO) test -count=1 -timeout 10m -run 'TestSwarm|TestRun' -v ./internal/swarm ./cmd/mbtswarm

swarm-short:
	$(GO) test -race -count=1 -timeout 5m -run 'TestSwarm(SmallDeterminism|KillResume|200Race|ConfigValidation)' -v ./internal/swarm

# Overload soak: the limiter/breaker property suite, the Busy frame
# codec, per-peer admission shedding (the raw-connection flood against a
# live victim, then the same flood layered over drop+corruption faults),
# catalog query limiting, and the 24-node flash-crowd-overload swarm
# scenario that must degrade, keep serving, and recover — all
# race-clean. overload-soak-short is the CI smoke: the single-victim
# flood plus the swarm scenario.
overload-soak:
	$(GO) test -race -count=1 -v ./internal/limit
	$(GO) test -race -count=1 -run 'TestBusy|TestSafeQueryLimit' -v ./internal/wire ./internal/server
	$(GO) test -race -count=1 -run 'TestOutboxClassPriority|TestHealthzSaturationRecovers|TestFloodVictimStaysLive|TestChaosFloodSoak|TestSwarmOverload' -v ./internal/daemon ./internal/swarm

overload-soak-short:
	$(GO) test -race -count=1 -run 'TestFloodVictimStaysLive|TestSwarmOverload' -v ./internal/daemon ./internal/swarm

# The sweep-pool benchmark: workers=1 vs workers=NumCPU wall clock.
bench:
	$(GO) test -run '^$$' -bench BenchmarkRunAll -benchtime 1x .

# Benchmark history: the hot-path benches (wire codec, beacon fan-out,
# peer-table contention, DHT k-buckets and lookups, WAL append/replay,
# clique enumeration, admission limiters, outbox shedding) plus the
# sweep pool, rendered to JSON. Each run
# APPENDS a record stamped with the git SHA and UTC date to
# results/BENCH_swarm.json, so the file accumulates a per-commit
# history for diffing (see cmd/benchjson for the format).
bench-json:
	{ $(GO) test -run '^$$' -bench . -benchtime 0.5s \
		./internal/wire ./internal/peer ./internal/store ./internal/clique ./internal/fec ./internal/dht ./internal/limit ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFECSoak|BenchmarkOutboxShed' -benchtime 1x ./internal/daemon ; \
	  $(GO) test -run '^$$' -bench BenchmarkRunAll -benchtime 1x . ; } \
	| $(GO) run ./cmd/benchjson -label swarm-baseline \
		-commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		-date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		-out results/BENCH_swarm.json
	@echo appended to results/BENCH_swarm.json

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseCSV -fuzztime 30s ./internal/experiment
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 30s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/store
