# Repo verification targets. `make check` is the gate: vet + full tests
# + the race detector over the concurrent sweep pool.

GO ?= go

.PHONY: check vet test race short bench fuzz

check: vet test race

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick loop: skips the full -small sweep tests.
short:
	$(GO) test -short ./...

# The sweep-pool benchmark: workers=1 vs workers=NumCPU wall clock.
bench:
	$(GO) test -run '^$$' -bench BenchmarkRunAll -benchtime 1x .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseCSV -fuzztime 30s ./internal/experiment
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 30s ./internal/wire
