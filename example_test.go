package hybriddtn_test

import (
	"fmt"
	"log"

	hybriddtn "repro"
)

// ExampleRun simulates the full MBT protocol over a small campus trace
// and reports whether the offline students' searches were served.
func ExampleRun() {
	traceCfg := hybriddtn.DefaultNUSTrace()
	traceCfg.Students, traceCfg.Classes, traceCfg.Days = 40, 8, 5

	tr, err := hybriddtn.NUSTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := hybriddtn.DefaultConfig(tr)
	cfg.Variant = hybriddtn.MBT
	cfg.Workload.NewFilesPerDay = 10

	res, err := hybriddtn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("queries generated:", res.Queries > 0)
	fmt.Println("ratios in range:",
		res.MetadataRatio >= 0 && res.MetadataRatio <= 1 &&
			res.FileRatio >= 0 && res.FileRatio <= res.MetadataRatio)
	// Output:
	// queries generated: true
	// ratios in range: true
}

// ExampleParseVariant shows the protocol names the paper uses.
func ExampleParseVariant() {
	for _, name := range []string{"MBT", "MBT-Q", "MBT-QM"} {
		v, err := hybriddtn.ParseVariant(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
	}
	// Output:
	// MBT
	// MBT-Q
	// MBT-QM
}

// ExampleRunExperiment reproduces one point of the paper's Figure 3(a)
// at test scale.
func ExampleRunExperiment() {
	def, err := hybriddtn.LookupExperiment("fig3a")
	if err != nil {
		log.Fatal(err)
	}
	def.Xs = []float64{0.5}

	s, err := hybriddtn.RunExperiment(def, hybriddtn.ExperimentOptions{Seed: 1, Small: true})
	if err != nil {
		log.Fatal(err)
	}

	cell := s.Points[0].Cells[hybriddtn.MBT]
	fmt.Println("panel:", s.ID)
	fmt.Println("MBT delivered something:", cell.MetadataRatio > 0)
	// Output:
	// panel: fig3a
	// MBT delivered something: true
}
