package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSteadySmall(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-scenario", "steady", "-nodes", "24", "-seed", "3",
		"-timeout", "1m", "-out", dir,
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep struct {
		Scenario           string  `json:"scenario"`
		CompletionFraction float64 `json:"completion_fraction"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, out.String())
	}
	if rep.Scenario != "steady" || rep.CompletionFraction != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "swarm_steady.json")); err != nil {
		t.Fatalf("report file missing: %v", err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "nope", "-nodes", "10"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
}
