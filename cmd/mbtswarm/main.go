// Command mbtswarm boots a scripted swarm of live daemons over the
// in-memory transport and reports availability metrics — the CLI face
// of the internal/swarm harness, for long soaks and populations bigger
// than the test suite runs.
//
// Usage:
//
//	mbtswarm -scenario steady -nodes 1000
//	mbtswarm -scenario seeder-death -nodes 500 -seed 7 -out results
//	mbtswarm -scenario mobility -nodes 200 -timeout 5m -v
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/swarm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mbtswarm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mbtswarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "steady",
			"scenario: "+strings.Join(swarm.ScenarioNames(), ", "))
		nodes   = fs.Int("nodes", 1000, "population size, seeders included")
		seed    = fs.Uint64("seed", 42, "topology and fault seed")
		timeout = fs.Duration("timeout", 5*time.Minute, "abort the run after this long")
		out     = fs.String("out", "", "also write the report JSON into this directory")
		verbose = fs.Bool("v", false, "log harness lifecycle events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := swarm.BuildScenario(*scenario, *nodes, *seed)
	if err != nil {
		return err
	}
	sc.Timeout = *timeout
	if *verbose {
		sc.Config.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}

	rep, runErr := swarm.RunScenario(context.Background(), sc)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(data))
	if *out != "" {
		path, err := rep.WriteFile(*out)
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, "mbtswarm: wrote", path)
	}
	return runErr
}
