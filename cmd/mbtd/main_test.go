package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-listen", "127.0.0.1:0"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-id") {
		t.Fatalf("missing -id: %v", err)
	}
	if err := run(ctx, []string{"-id", "1"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-listen") {
		t.Fatalf("missing links: %v", err)
	}
}

// TestBadFlagCombos feeds run() invalid flag combinations and checks
// each one dies immediately with an error naming the bad flag and a
// usage dump — the daemon must never limp onto the mesh misconfigured.
func TestBadFlagCombos(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"missing id", []string{"-listen", "127.0.0.1:0"}, "-id"},
		{"negative id", []string{"-id", "-3", "-listen", "127.0.0.1:0"}, "-id"},
		{"no links", []string{"-id", "1"}, "-listen"},
		{"fault drop out of range", []string{"-id", "1", "-listen", "127.0.0.1:0", "-fault", "drop=1.5"}, "-fault"},
		{"fault unknown key", []string{"-id", "1", "-listen", "127.0.0.1:0", "-fault", "banana=1"}, "-fault"},
		{"fault bad partition", []string{"-id", "1", "-listen", "127.0.0.1:0", "-fault", "partition=zzz"}, "-fault"},
		{"data-dir is a file", []string{"-id", "1", "-listen", "127.0.0.1:0", "-data-dir", file}, "-data-dir"},
		{"data-dir under a file", []string{"-id", "1", "-listen", "127.0.0.1:0", "-data-dir", filepath.Join(file, "sub")}, "-data-dir"},
		{"fec without bcast", []string{"-id", "1", "-listen", "127.0.0.1:0", "-fec"}, "-bcast"},
		{"fec without listen", []string{"-id", "1", "-peers", "127.0.0.1:1", "-bcast", "-fec"}, "-listen"},
		{"dht-k without dht", []string{"-id", "1", "-listen", "127.0.0.1:0", "-dht-k", "8"}, "-dht"},
		{"negative dht-k", []string{"-id", "1", "-listen", "127.0.0.1:0", "-dht", "-dht-k", "-2"}, "-dht-k"},
		{"dht-republish without dht", []string{"-id", "1", "-listen", "127.0.0.1:0", "-dht-republish", "5s"}, "-dht"},
		{"negative dht-republish", []string{"-id", "1", "-listen", "127.0.0.1:0", "-dht", "-dht-republish", "-5s"}, "-dht-republish"},
		{"negative rate", []string{"-id", "1", "-listen", "127.0.0.1:0", "-rate", "-1"}, "-rate"},
		{"negative busy-retry-after", []string{"-id", "1", "-listen", "127.0.0.1:0", "-busy-retry-after", "-5s"}, "-busy-retry-after"},
		{"negative breaker-cooldown", []string{"-id", "1", "-listen", "127.0.0.1:0", "-breaker-cooldown", "-1s"}, "-breaker-cooldown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(context.Background(), tc.args, &buf)
			if err == nil {
				t.Fatalf("accepted %v", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name %q", err, tc.wantSub)
			}
			if out := buf.String(); !strings.Contains(out, "Usage of mbtd") {
				t.Fatalf("no usage dump in output:\n%s", out)
			}
		})
	}
}

func TestFaultFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{
		"-id", "1", "-listen", "127.0.0.1:0", "-fault", "drop=1.5",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-fault") {
		t.Fatalf("bad -fault spec accepted: %v", err)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(\"\") = %v", got)
	}
}

// freePort grabs an ephemeral port and releases it for the daemon to
// rebind — the standard test trick, racy only against other processes.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// TestLocalhostDemo is the README demo as a test: two mbtd daemons on
// localhost, a metadata query, and a full multi-piece download, watched
// through the leecher's /stats endpoint.
func TestLocalhostDemo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	seedPeer, leechHTTP := freePort(t), freePort(t)
	errs := make(chan error, 2)
	go func() {
		errs <- run(ctx, []string{
			"-id", "1", "-listen", seedPeer, "-internet", "-files", "2",
			"-hello", "20ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "2", "-peers", seedPeer, "-query", "f0",
			"-http", leechHTTP, "-hello", "20ms", "-quiet",
		}, io.Discard)
	}()

	statsURL := fmt.Sprintf("http://%s/stats", leechHTTP)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("demo download never completed")
		}
		select {
		case err := <-errs:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		var stats struct {
			Completed      map[string]bool `json:"completed"`
			PiecesVerified uint64          `json:"pieces_verified"`
		}
		if resp, err := http.Get(statsURL); err == nil {
			json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if stats.Completed["dtn://files/0"] && stats.PiecesVerified >= 3 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown: both daemons return the context error only.
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestLocalhostBcastDemo is the README broadcast walkthrough as a test:
// three mbtd daemons in a full TCP mesh with -bcast, where the clique
// forms from overheard hellos and the shared download rides the group
// schedule (fanned out over the unicast links). Both leechers must
// complete the file, report a confirmed three-node group in /stats,
// and have received pieces over the broadcast path. The seed's fast
// beacon makes the rounds fast (it is the sequencer), while the
// 128-piece file outlasts the pairwise head start before confirmation.
func TestLocalhostBcastDemo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	p1, p2, p3 := freePort(t), freePort(t), freePort(t)
	h2, h3 := freePort(t), freePort(t)
	errs := make(chan error, 3)
	go func() {
		errs <- run(ctx, []string{
			"-id", "1", "-listen", p1, "-internet", "-files", "1",
			"-file-size", "524288", "-piece-size", "4096",
			"-bcast", "-hello", "20ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "2", "-listen", p2, "-peers", p1, "-query", "f0",
			"-bcast", "-http", h2, "-hello", "200ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "3", "-listen", p3, "-peers", p1 + "," + p2, "-query", "f0",
			"-bcast", "-http", h3, "-hello", "200ms", "-quiet",
		}, io.Discard)
	}()

	type stats struct {
		Completed map[string]bool `json:"completed"`
		Bcast     *struct {
			Group      []int  `json:"group"`
			Confirmed  bool   `json:"confirmed"`
			BcastsRecv uint64 `json:"piece_bcasts_recv"`
		} `json:"bcast"`
	}
	poll := func(addr string) (st stats, ok bool) {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
		if err != nil {
			return st, false
		}
		defer resp.Body.Close()
		return st, json.NewDecoder(resp.Body).Decode(&st) == nil
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("broadcast demo never completed with a confirmed group")
		}
		select {
		case err := <-errs:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		st2, ok2 := poll(h2)
		st3, ok3 := poll(h3)
		if ok2 && ok3 &&
			st2.Completed["dtn://files/0"] && st3.Completed["dtn://files/0"] &&
			st2.Bcast != nil && st2.Bcast.Confirmed && len(st2.Bcast.Group) == 3 &&
			st3.Bcast != nil && st3.Bcast.Confirmed && len(st3.Bcast.Group) == 3 &&
			st2.Bcast.BcastsRecv > 0 && st3.Bcast.BcastsRecv > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestLocalhostFECDemo is the README fountain walkthrough as a test:
// the three-daemon broadcast mesh with -fec everywhere, so once the
// clique confirms, granted pieces ride the UDP symbol lane as rateless
// coded symbols instead of PieceBcast frames. Both leechers must
// complete the file, having decoded pieces from the lane.
func TestLocalhostFECDemo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	p1, p2, p3 := freePort(t), freePort(t), freePort(t)
	h2, h3 := freePort(t), freePort(t)
	errs := make(chan error, 3)
	go func() {
		errs <- run(ctx, []string{
			"-id", "1", "-listen", p1, "-internet", "-files", "1",
			"-file-size", "524288", "-piece-size", "4096",
			"-bcast", "-fec", "-symbol-peers", p2 + "," + p3,
			"-hello", "20ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "2", "-listen", p2, "-peers", p1, "-query", "f0",
			"-bcast", "-fec", "-symbol-peers", p1 + "," + p3,
			"-http", h2, "-hello", "200ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "3", "-listen", p3, "-peers", p1 + "," + p2, "-query", "f0",
			"-bcast", "-fec", "-symbol-peers", p1 + "," + p2,
			"-http", h3, "-hello", "200ms", "-quiet",
		}, io.Discard)
	}()

	type stats struct {
		Completed map[string]bool `json:"completed"`
		Bcast     *struct {
			Group       []int  `json:"group"`
			Confirmed   bool   `json:"confirmed"`
			SymbolsRecv uint64 `json:"symbols_recv"`
			FECDecodes  uint64 `json:"fec_decodes"`
		} `json:"bcast"`
	}
	poll := func(addr string) (st stats, ok bool) {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
		if err != nil {
			return st, false
		}
		defer resp.Body.Close()
		return st, json.NewDecoder(resp.Body).Decode(&st) == nil
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("fec demo never completed with fountain decodes")
		}
		select {
		case err := <-errs:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		st2, ok2 := poll(h2)
		st3, ok3 := poll(h3)
		if ok2 && ok3 &&
			st2.Completed["dtn://files/0"] && st3.Completed["dtn://files/0"] &&
			st2.Bcast != nil && st2.Bcast.Confirmed && len(st2.Bcast.Group) == 3 &&
			st3.Bcast != nil && st3.Bcast.Confirmed && len(st3.Bcast.Group) == 3 &&
			st2.Bcast.FECDecodes > 0 && st3.Bcast.FECDecodes > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestLocalhostDemoUnderFaults reruns the demo with the leecher's
// transport behind `-fault`: 20% drop and 10% corruption over real TCP
// sockets, recovered by the resend deadline and stall re-drive.
func TestLocalhostDemoUnderFaults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	seedPeer, leechHTTP := freePort(t), freePort(t)
	errs := make(chan error, 2)
	go func() {
		errs <- run(ctx, []string{
			"-id", "1", "-listen", seedPeer, "-internet", "-files", "1",
			"-hello", "20ms", "-window", "500ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "2", "-peers", seedPeer, "-query", "f0",
			"-http", leechHTTP, "-hello", "20ms", "-window", "500ms",
			"-fault", "seed=7,drop=0.2,corrupt=0.1", "-quiet",
		}, io.Discard)
	}()

	statsURL := fmt.Sprintf("http://%s/stats", leechHTTP)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("faulty demo download never completed")
		}
		select {
		case err := <-errs:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		var stats struct {
			Completed map[string]bool `json:"completed"`
		}
		if resp, err := http.Get(statsURL); err == nil {
			json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if stats.Completed["dtn://files/0"] {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestLocalhostRestartDemo is the README durability walkthrough as a
// test: a leecher with -data-dir is killed mid-download, restarted on
// the same directory, and must report recovered state over /healthz,
// finish the file, and never be re-sent a piece it already persisted.
func TestLocalhostRestartDemo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dataDir := t.TempDir()

	seedPeer, leechHTTP := freePort(t), freePort(t)
	seedErr := make(chan error, 1)
	go func() {
		// 512 × 4 KB pieces: at 16 pieces per hello burst the transfer
		// spans dozens of hellos, leaving a wide window to kill into.
		seedErr <- run(ctx, []string{
			"-id", "1", "-listen", seedPeer, "-internet", "-files", "1",
			"-file-size", "2097152", "-piece-size", "4096",
			"-hello", "20ms", "-quiet",
		}, io.Discard)
	}()

	leechArgs := []string{
		"-id", "2", "-peers", seedPeer, "-query", "f0",
		"-http", leechHTTP, "-hello", "20ms", "-data-dir", dataDir, "-quiet",
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	leechErr := make(chan error, 1)
	go func() { leechErr <- run(ctx1, leechArgs, io.Discard) }()

	type stats struct {
		Completed       map[string]bool `json:"completed"`
		PiecesVerified  uint64          `json:"pieces_verified"`
		PiecesRefetched uint64          `json:"pieces_refetched"`
	}
	poll := func() (st stats, ok bool) {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", leechHTTP))
		if err != nil {
			return st, false
		}
		defer resp.Body.Close()
		return st, json.NewDecoder(resp.Body).Decode(&st) == nil
	}

	// Kill the leecher once a strict prefix of the 512 pieces is durable.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("download never started")
		}
		if st, ok := poll(); ok && st.PiecesVerified >= 16 && st.PiecesVerified <= 256 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1()
	if err := <-leechErr; err != nil && err != context.Canceled {
		t.Fatalf("leech first run: %v", err)
	}

	// Same command line, same directory: the restart resumes.
	go func() { leechErr <- run(ctx, leechArgs, io.Discard) }()
	deadline = time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("restarted download never completed")
		}
		if st, ok := poll(); ok && st.Completed["dtn://files/0"] {
			if st.PiecesRefetched != 0 {
				t.Fatalf("restarted daemon was re-sent %d persisted pieces", st.PiecesRefetched)
			}
			if st.PiecesVerified >= 512 {
				t.Fatalf("restart re-verified all %d pieces; recovery did not restore any", st.PiecesVerified)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	var health struct {
		Recovery *struct {
			Recovered bool `json:"recovered"`
		} `json:"recovery"`
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", leechHTTP))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Recovery == nil || !health.Recovery.Recovered {
		t.Fatalf("healthz does not report recovery: %+v", health)
	}

	cancel()
	for _, ch := range []chan error{seedErr, leechErr} {
		select {
		case err := <-ch:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}
