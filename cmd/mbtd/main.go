// Command mbtd runs one live MBT node over TCP: it beacons hellos,
// answers queries with metadata, and broadcasts verified file pieces to
// downloading peers — the daemon form of the protocol the simulator
// replays.
//
// A two-node localhost session: terminal one hosts the Internet-access
// seed with a three-file catalog,
//
//	mbtd -id 1 -listen 127.0.0.1:7001 -internet -files 3 -http 127.0.0.1:8001
//
// and terminal two runs a mobile node that dials it, searches for file
// f0, and downloads it:
//
//	mbtd -id 2 -listen 127.0.0.1:7002 -peers 127.0.0.1:7001 -query f0 -http 127.0.0.1:8002
//
// Watch `curl 127.0.0.1:8002/stats` until the download shows under
// "completed". SIGINT/SIGTERM shut the daemon down gracefully.
//
// With -data-dir the node's state — verified pieces, metadata, credit,
// quarantines — is persisted through a write-ahead log and survives a
// kill: restart the same command line and the daemon resumes where it
// died, advertising its recovered pieces so peers never re-send them.
// Recovery details appear under "recovery" in /healthz.
//
// With -bcast on three or more fully-meshed daemons, the nodes derive
// their clique from overheard hellos and switch to the §V broadcast
// group schedule: one granted sender per round ships each piece to the
// whole group (fanned out over the TCP links), instead of every
// downloader pulling its own pairwise stream. -tft swaps the
// cooperative coordinator for the tit-for-tat cyclic order. Group
// state appears under "bcast" in /stats.
//
// With -fec (requires -bcast) each daemon additionally opens a UDP
// symbol lane on -listen's port and advertises fountain-coded delivery
// to its group. When every member advertises it, granted senders stream
// rateless coded symbols over the lane instead of broadcasting pieces;
// receivers decode from whichever subset arrives and relay a bounded
// number of symbols to members the sender can't reach. A single
// non--fec member pins the group to the plain piece plane, so mixed
// fleets keep working. Symbol counters appear under "bcast" in /stats.
//
// With -dht every daemon joins a Kademlia-style metadata index layered
// under the gossip: Internet nodes republish their catalog into the
// index, and any node resolves open queries from it — local cache
// first, iterative lookup second — so keyword search keeps working
// after the catalog server dies. -dht-k sets the replication factor
// and -dht-republish the maintenance cadence. Counters appear under
// "dht" in /stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "mbtd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mbtd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		id       = fs.Int("id", -1, "node ID (required, unique per daemon)")
		listen   = fs.String("listen", "", "TCP listen address for peer links, e.g. 127.0.0.1:7001")
		peers    = fs.String("peers", "", "comma-separated peer addresses to dial and keep dialed")
		httpAddr = fs.String("http", "", "serve /healthz and /stats on this address (off when empty)")
		internet = fs.Bool("internet", false, "Internet-access node: hosts the catalog, answers queries authoritatively")
		files    = fs.Int("files", 0, "synthetic catalog files to publish at startup (with -internet)")
		fileSize = fs.Int64("file-size", 0, "synthetic file size in bytes (0 = daemon default)")
		pieceSz  = fs.Int("piece-size", 0, "piece size in bytes (0 = daemon default)")
		queries  = fs.String("query", "", "comma-separated query strings this node searches for")
		fetch    = fs.Bool("fetch-matching", true, "download every file whose metadata matches a query")
		hello    = fs.Duration("hello", time.Second, "hello beacon interval")
		window   = fs.Duration("window", 5*time.Second, "peer liveness window (drop peers silent this long)")
		bcastOn  = fs.Bool("bcast", false, "run the broadcast-group schedule: cliques of 3+ fully-meshed nodes download via one granted sender per round")
		tft      = fs.Bool("tft", false, "with -bcast, use the tit-for-tat cyclic order instead of the cooperative coordinator")
		fecOn    = fs.Bool("fec", false, "with -bcast, stream granted pieces as fountain-coded symbols over a UDP lane on -listen's port; active only when every group member runs -fec too")
		symbolSz = fs.Int("symbol-size", 0, "with -fec, coded-symbol payload bytes (0 = engine default)")
		symPeers = fs.String("symbol-peers", "", "with -fec, UDP addresses the symbol lane fans out to (default: the -peers list)")
		dhtOn    = fs.Bool("dht", false, "join the Kademlia metadata index: publish the catalog into it (with -internet) and resolve queries from it when the server path is gone")
		dhtK     = fs.Int("dht-k", 0, "with -dht, k-bucket size and replication factor (0 = engine default)")
		dhtRepub = fs.Duration("dht-republish", 0, "with -dht, table-refresh and catalog-republish cadence (0 = 10x -hello)")
		rate     = fs.Float64("rate", 0, "per-peer admission rate in messages/second: excess inbound is shed and answered with Busy, and catalog/DHT service obeys the same rate (0 = off)")
		busyRA   = fs.Duration("busy-retry-after", 0, "backoff window advertised in outgoing Busy frames (0 = 2x -hello)")
		brkCool  = fs.Duration("breaker-cooldown", 0, "dial circuit-breaker open window per failing address (0 = -window)")
		faultArg = fs.String("fault", "", "inject transport faults, e.g. 'seed=42,drop=0.3,corrupt=0.2,partition=10s-20s' (see internal/fault)")
		dataDir  = fs.String("data-dir", "", "persist node state here (WAL + snapshots); restart resumes from it")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag-validation failures print usage and exit non-zero: a daemon
	// with a bad spec must die now, not after it has joined the mesh.
	fail := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(logw, "mbtd: %v\n", err)
		fs.Usage()
		return err
	}
	if *id < 0 {
		return fail("-id is required and must be >= 0")
	}
	if *listen == "" && *peers == "" {
		return fail("need -listen and/or -peers; a daemon with neither has no links")
	}
	if *fecOn && !*bcastOn {
		return fail("-fec rides the broadcast-group schedule; it needs -bcast")
	}
	if *fecOn && *listen == "" {
		return fail("-fec binds its UDP symbol lane to -listen's address; set -listen")
	}
	if *dhtK != 0 && !*dhtOn {
		return fail("-dht-k tunes the Kademlia index; it needs -dht")
	}
	if *dhtK < 0 {
		return fail("-dht-k must be positive, have %d", *dhtK)
	}
	if *dhtRepub != 0 && !*dhtOn {
		return fail("-dht-republish tunes the Kademlia index; it needs -dht")
	}
	if *dhtRepub < 0 {
		return fail("-dht-republish must be positive, have %v", *dhtRepub)
	}
	if *rate < 0 {
		return fail("-rate must be >= 0 messages/second, have %v", *rate)
	}
	if *busyRA < 0 {
		return fail("-busy-retry-after must be >= 0, have %v", *busyRA)
	}
	if *brkCool < 0 {
		return fail("-breaker-cooldown must be >= 0, have %v", *brkCool)
	}
	if *dataDir != "" {
		if fi, err := os.Stat(*dataDir); err == nil && !fi.IsDir() {
			return fail("-data-dir %q is a file, not a directory", *dataDir)
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			return fail("-data-dir: %v", err)
		}
	}

	logger := log.New(logw, fmt.Sprintf("mbtd[%d] ", *id), log.LstdFlags|log.Lmsgprefix)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}

	var tr transport.Transport = &transport.TCP{}
	var chaos *fault.Transport
	if *faultArg != "" {
		fcfg, err := fault.ParseSpec(*faultArg)
		if err != nil {
			return fail("-fault: %v", err)
		}
		chaos = fault.Wrap(tr, fcfg)
		tr = chaos
		logger.Printf("fault injection on: %s", *faultArg)
	}

	// The symbol lane reuses the daemon's addressing: UDP on the same
	// host:port as the TCP listener, fanning to the same peer list. TCP
	// and UDP ports are separate namespaces, so nothing collides, and
	// every -fec daemon in a mesh is reachable at the address its peers
	// already dial.
	var symbols transport.SymbolConn
	if *fecOn {
		lanePeers := splitList(*symPeers)
		if lanePeers == nil {
			lanePeers = splitList(*peers)
		}
		lane, err := transport.NewUDPLane(*listen, lanePeers)
		if err != nil {
			return fail("-fec: %v", err)
		}
		defer lane.Close()
		symbols = lane
		if chaos != nil {
			symbols = chaos.WrapSymbols(symbols)
		}
		logger.Printf("fec symbol lane on udp %s", lane.Addr())
	}

	cfg := daemon.Config{
		ID:              trace.NodeID(*id),
		Transport:       tr,
		ListenAddr:      *listen,
		PeerAddrs:       splitList(*peers),
		InternetAccess:  *internet,
		PublishFiles:    *files,
		FileSize:        *fileSize,
		PieceSize:       *pieceSz,
		Queries:         splitList(*queries),
		FetchMatching:   *fetch,
		HelloInterval:   *hello,
		LivenessWindow:  *window,
		PeerRate:        *rate,
		BusyRetryAfter:  *busyRA,
		BreakerCooldown: *brkCool,
		EnableBcast:     *bcastOn,
		TitForTat:       *tft,
		EnableFEC:       *fecOn,
		Symbols:         symbols,
		SymbolSize:      *symbolSz,
		EnableDHT:       *dhtOn,
		DHTK:            *dhtK,
		DHTRepublish:    *dhtRepub,
		Fault:           chaos,
		DataDir:         *dataDir,
		Logf:            logf,
	}
	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}

	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: d.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http: %v", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		logger.Printf("stats at http://%s/stats", *httpAddr)
	}

	if *dataDir != "" {
		if h := d.Health(); h.Recovery != nil && h.Recovery.Recovered {
			logger.Printf("recovered state from %s: %d snapshot + %d wal records (%d torn bytes dropped)",
				*dataDir, h.Recovery.SnapshotRecords, h.Recovery.WALRecords, h.Recovery.TornBytes)
		}
	}
	logger.Printf("node %d up: listen=%q peers=%v internet=%v files=%d queries=%v data-dir=%q",
		*id, *listen, cfg.PeerAddrs, *internet, *files, cfg.Queries, *dataDir)
	err = d.Run(ctx)
	if chaos != nil {
		logger.Printf("fault injector: %+v", chaos.Stats())
	}
	if errors.Is(err, context.Canceled) {
		logger.Printf("shut down")
	}
	return err
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
