package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// dhtStats is the /stats slice the DHT demo watches.
type dhtStats struct {
	MetadataStored int             `json:"metadata_stored"`
	Downloading    []string        `json:"downloading"`
	Completed      map[string]bool `json:"completed"`
	Transport      struct {
		MetadataRecv uint64 `json:"metadata_recv"`
	} `json:"transport"`
	DHT *struct {
		StoresRecv uint64 `json:"stores_recv"`
		Lookups    uint64 `json:"lookups"`
		CacheHits  uint64 `json:"cache_hits"`
		StoreSize  int    `json:"store_size"`
	} `json:"dht"`
}

func pollDHTStats(addr string) (st dhtStats, ok bool) {
	resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st) == nil
}

// TestLocalhostDHTDemo is the README decentralized-discovery
// walkthrough as a test: a -dht catalog server and a -dht mobile node
// come up, the server republishes its two-file catalog into the index,
// and the mobile node downloads f0. Then the server is killed
// mid-demo, and a third node joins querying f1 — a keyword nobody ever
// searched while the server lived. The legacy path has no holder of
// that metadata; the new node must resolve it from node 2's DHT store,
// with zero legacy metadata frames received.
func TestLocalhostDHTDemo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()

	p1, p2, p3 := freePort(t), freePort(t), freePort(t)
	h2, h3 := freePort(t), freePort(t)
	srvErr := make(chan error, 1)
	errs := make(chan error, 2)
	go func() {
		srvErr <- run(srvCtx, []string{
			"-id", "1", "-listen", p1, "-internet", "-files", "2",
			"-dht", "-dht-republish", "200ms", "-hello", "20ms", "-quiet",
		}, io.Discard)
	}()
	go func() {
		errs <- run(ctx, []string{
			"-id", "2", "-listen", p2, "-peers", p1, "-query", "f0",
			"-dht", "-dht-republish", "200ms", "-http", h2, "-hello", "20ms", "-quiet",
		}, io.Discard)
	}()

	// Phase 1: node 2 downloads f0 the ordinary way while the server's
	// republish cycle pushes both catalog records into node 2's DHT
	// store (f1 included — a record node 2 never asked for).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("phase 1 never converged: f0 download + DHT replication")
		}
		select {
		case err := <-srvErr:
			t.Fatalf("server exited early: %v", err)
		case err := <-errs:
			t.Fatalf("node 2 exited early: %v", err)
		default:
		}
		if st, ok := pollDHTStats(h2); ok &&
			st.Completed["dtn://files/0"] && st.DHT != nil && st.DHT.StoresRecv >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill the server mid-demo. The catalog dies with it.
	srvCancel()
	select {
	case err := <-srvErr:
		if err != nil && err != context.Canceled {
			t.Fatalf("server shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// Phase 2: node 3 joins after the server's death, searching for the
	// never-queried keyword. Only node 2's DHT store can answer.
	go func() {
		errs <- run(ctx, []string{
			"-id", "3", "-listen", p3, "-peers", p2, "-query", "f1",
			"-dht", "-dht-republish", "200ms", "-http", h3, "-hello", "20ms", "-quiet",
		}, io.Discard)
	}()

	deadline = time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("node 3 never resolved f1 from the DHT after server death")
		}
		select {
		case err := <-errs:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		st, ok := pollDHTStats(h3)
		if !ok {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		resolved := false
		for _, uri := range st.Downloading {
			if uri == "dtn://files/1" {
				resolved = true
			}
		}
		if resolved || st.Completed["dtn://files/1"] {
			if st.Transport.MetadataRecv != 0 {
				t.Fatalf("node 3 received %d legacy metadata frames; resolution should be pure-DHT",
					st.Transport.MetadataRecv)
			}
			if st.MetadataStored == 0 {
				t.Fatal("node 3 resolved f1 but stored no metadata")
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil && err != context.Canceled {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}
