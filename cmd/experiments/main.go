// Command experiments regenerates the paper's evaluation: every figure
// panel (Figures 2(a)–(e) and 3(a)–(f)) as a parameter sweep over the
// three protocols, printed as text tables and optionally written as CSV
// files for plotting.
//
// Sweeps execute on a run-level worker pool: every (panel, x, variant,
// seed) simulation is an independent job, and -workers sizes the pool
// (default 0 = one worker per CPU; 1 forces sequential). Output is
// byte-identical for any worker count — per-cell seeds derive from the
// sweep seed and the cell's coordinates, never from scheduling order.
//
// Usage:
//
//	experiments                  # run all panels at full scale, one worker per CPU
//	experiments -only fig3a      # one panel
//	experiments -small           # reduced scale (quick smoke run)
//	experiments -seeds 5         # average 5 seeds per cell, with 95% CIs
//	experiments -workers 4       # cap the pool at 4 concurrent simulations
//	experiments -stats           # print run instrumentation (wall/sim time,
//	                             # events fired, broadcasts) after the tables
//	experiments -csv results/    # also write one CSV per panel
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiment"
	"repro/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only    = fs.String("only", "", "run a single panel by id (e.g. fig2a)")
		small   = fs.Bool("small", false, "reduced population and duration")
		seed    = fs.Uint64("seed", 1, "sweep seed")
		seeds   = fs.Int("seeds", 1, "average each point over this many seeds")
		workers = fs.Int("workers", 0, "simulations to run concurrently (0 = one per CPU)")
		stats   = fs.Bool("stats", false, "print per-run instrumentation after the tables")
		csvDir  = fs.String("csv", "", "also write one CSV per panel into this directory")
		svgDir  = fs.String("svg", "", "also render two SVG charts per panel into this directory")
		replot  = fs.String("replot", "", "render SVGs from saved CSVs in this directory instead of simulating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiment.Options{Seed: *seed, Seeds: *seeds, Small: *small, Workers: *workers}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	var (
		series   []*experiment.Series
		runStats *experiment.RunStats
		runErr   error
	)
	start := time.Now()
	if *replot != "" {
		loaded, err := loadSeries(*replot, *only)
		if err != nil {
			return err
		}
		series = loaded
	} else if *only != "" {
		def, err := experiment.Lookup(*only)
		if err != nil {
			return err
		}
		s, st, err := experiment.RunWithStats(def, opts)
		if err != nil {
			return err
		}
		series, runStats = []*experiment.Series{s}, st
	} else {
		// RunAll joins per-cell errors and still returns the panels that
		// completed; print those before reporting the failure.
		all, st, err := experiment.RunAllWithStats(opts)
		series, runStats, runErr = all, st, err
	}

	for _, s := range series {
		if s == nil {
			continue // the panel failed; runErr carries the details
		}
		fmt.Fprint(stdout, s.Table())
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, s.ID+".csv")
			if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
				return err
			}
		}
		if *svgDir != "" {
			for _, m := range []struct {
				metric plot.Metric
				suffix string
			}{
				{plot.MetadataRatio, "meta"},
				{plot.FileRatio, "file"},
			} {
				path := filepath.Join(*svgDir, fmt.Sprintf("%s_%s.svg", s.ID, m.suffix))
				if err := os.WriteFile(path, []byte(plot.SVG(s, m.metric)), 0o644); err != nil {
					return err
				}
			}
		}
	}
	done := 0
	for _, s := range series {
		if s != nil {
			done++
		}
	}
	fmt.Fprintf(stdout, "(%d panels in %v)\n", done, time.Since(start).Round(time.Millisecond))
	if *stats && runStats != nil {
		fmt.Fprintln(stdout, "stats:", runStats)
	}
	return runErr
}

// loadSeries parses saved per-panel CSVs from dir; only filters to one id.
func loadSeries(dir, only string) ([]*experiment.Series, error) {
	var out []*experiment.Series
	for _, def := range experiment.Definitions() {
		if only != "" && def.ID != only {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, def.ID+".csv"))
		if err != nil {
			return nil, err
		}
		s, err := experiment.ParseCSV(def.ID, string(data))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
