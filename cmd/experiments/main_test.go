package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSinglePanelSmall(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig3a", "-small"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Fig 3(a)", "MBT-QM", "1 panels"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out strings.Builder
	if err := run([]string{"-only", "fig2c", "-small", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,MBT_meta") {
		t.Fatalf("csv content:\n%s", data)
	}
}

func TestStatsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig3a", "-small", "-workers", "4", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"stats:", "runs", "4 workers", "events"} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q:\n%s", want, got)
		}
	}
}

func TestStatsFlagOffByDefault(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig3a", "-small"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "stats:") {
		t.Fatalf("stats printed without -stats:\n%s", out.String())
	}
}

func TestUnknownPanel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig9z"}, &out); err == nil {
		t.Fatal("unknown panel accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSVGOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	var out strings.Builder
	if err := run([]string{"-only", "fig2c", "-small", "-svg", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2c_meta.svg", "fig2c_file.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Fatalf("%s is not SVG", name)
		}
	}
}

func TestReplotFromCSV(t *testing.T) {
	csvDir := filepath.Join(t.TempDir(), "csv")
	svgDir := filepath.Join(t.TempDir(), "svg")
	var out strings.Builder
	if err := run([]string{"-only", "fig2c", "-small", "-csv", csvDir}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-only", "fig2c", "-replot", csvDir, "-svg", svgDir}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(svgDir, "fig2c_file.svg")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 2(c)") {
		t.Fatalf("replot output:\n%s", out.String())
	}
}
