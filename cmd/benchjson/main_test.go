package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/wire
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeHello 	 1163236	       345.3 ns/op	     504 B/op	       6 allocs/op
BenchmarkEncodeRaw   	147388596	         2.237 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/wire	3.166s
pkg: repro/internal/peer
BenchmarkBeaconFanout/shared-frame/256         	    5470	     68968 ns/op	    7694 B/op	      17 allocs/op
PASS
`

func TestParseMultiPackageRun(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" {
		t.Fatalf("context not parsed: %+v", rec)
	}
	if len(rec.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rec.Results), rec.Results)
	}
	hello := rec.Results[0]
	if hello.Name != "BenchmarkEncodeHello" || hello.Iterations != 1163236 ||
		hello.NsPerOp != 345.3 || hello.BytesPerOp != 504 || hello.AllocsPerO != 6 {
		t.Fatalf("hello line misparsed: %+v", hello)
	}
	if hello.Package != "repro/internal/wire" {
		t.Fatalf("package not tracked: %+v", hello)
	}
	fan := rec.Results[2]
	if fan.Package != "repro/internal/peer" || !strings.Contains(fan.Name, "shared-frame") {
		t.Fatalf("cross-package line misparsed: %+v", fan)
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-label", "baseline"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal([]byte(out.String()), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rec.Label != "baseline" || len(rec.Results) != 3 {
		t.Fatalf("round-trip mismatch: %+v", rec)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), io.Discard); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestOutAppendsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	for i, sha := range []string{"aaa111", "bbb222"} {
		err := run([]string{"-label", "run", "-commit", sha, "-date", "2026-08-08T00:00:00Z", "-out", path},
			strings.NewReader(sample), io.Discard)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var history []Record
	if err := json.Unmarshal(data, &history); err != nil {
		t.Fatalf("history is not a record array: %v\n%s", err, data)
	}
	if len(history) != 2 {
		t.Fatalf("got %d records, want 2", len(history))
	}
	if history[0].Commit != "aaa111" || history[1].Commit != "bbb222" {
		t.Fatalf("commits out of order: %q, %q", history[0].Commit, history[1].Commit)
	}
	if history[1].Date == "" || len(history[1].Results) != 3 {
		t.Fatalf("appended record incomplete: %+v", history[1])
	}
}

func TestOutUpgradesLegacySingleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := Record{Label: "old-baseline", Results: []Result{{Name: "BenchmarkOld", Iterations: 1}}}
	data, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-commit", "ccc333", "-out", path}, strings.NewReader(sample), io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var history []Record
	if err := json.Unmarshal(raw, &history); err != nil {
		t.Fatalf("upgraded file is not an array: %v\n%s", err, raw)
	}
	if len(history) != 2 || history[0].Label != "old-baseline" || history[1].Commit != "ccc333" {
		t.Fatalf("legacy record lost in upgrade: %+v", history)
	}
}

func TestOutRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", path}, strings.NewReader(sample), io.Discard); err == nil {
		t.Fatal("garbage history file accepted")
	}
}
