// Command benchjson converts `go test -bench` text output into a JSON
// record, so benchmark baselines can be committed, diffed, and compared
// across commits without parsing the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench . ./internal/wire/ | benchjson > BENCH.json
//	benchjson -label swarm-baseline < bench.txt
//	benchjson -label swarm-baseline -commit "$(git rev-parse --short HEAD)" \
//	    -date "$(date -u +%FT%TZ)" -out results/BENCH_swarm.json
//
// Without -out the record prints to stdout. With -out the record is
// APPENDED to the named file, which holds a JSON array of records — one
// per run — so the file accumulates a per-commit history instead of
// being overwritten. A legacy file holding a single top-level record
// object is upgraded to a one-element array before appending.
//
// Non-benchmark lines (PASS, ok, compile noise) pass through to the
// context fields or are dropped, so piping a whole multi-package run in
// is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPerO float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any further "<value> <unit>" pairs (MB/s, custom
	// b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Record is the whole run. Commit and Date identify which tree produced
// the numbers when records accumulate in an -out history file.
type Record struct {
	Label   string   `json:"label,omitempty"`
	Commit  string   `json:"commit,omitempty"`
	Date    string   `json:"date,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "", "label stored in the output record")
	commit := fs.String("commit", "", "git SHA stored in the output record")
	date := fs.String("date", "", "timestamp stored in the output record")
	out := fs.String("out", "", "append the record to this JSON history file instead of printing it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec, err := parse(stdin)
	if err != nil {
		return err
	}
	rec.Label = *label
	rec.Commit = *commit
	rec.Date = *date
	if len(rec.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if *out != "" {
		return appendRecord(*out, rec)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, string(data))
	return err
}

// appendRecord adds rec to the history array in path. A missing or
// empty file starts a fresh array; a legacy file holding one bare
// record object becomes a one-element array first, so old baselines
// keep their place at index zero.
func appendRecord(path string, rec Record) error {
	var history []Record
	data, err := os.ReadFile(path)
	switch {
	case err == nil && len(strings.TrimSpace(string(data))) > 0:
		if jerr := json.Unmarshal(data, &history); jerr != nil {
			var legacy Record
			if lerr := json.Unmarshal(data, &legacy); lerr != nil {
				return fmt.Errorf("%s is neither a record array nor a legacy record: %v", path, jerr)
			}
			history = []Record{legacy}
		}
	case err != nil && !os.IsNotExist(err):
		return err
	}
	history = append(history, rec)
	data, err = json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parse(r io.Reader) (Record, error) {
	var rec Record
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Package = pkg
			rec.Results = append(rec.Results, res)
		}
	}
	return rec, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  1000  123 ns/op  45 B/op ...".
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The rest is "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerO = v
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[fields[i+1]] = v
		}
	}
	return res, true
}
