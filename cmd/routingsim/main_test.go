package main

import (
	"strings"
	"testing"
)

func TestAllProtocolsOnWaypoint(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "waypoint", "-messages", "30", "-ttl", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"direct", "epidemic", "spray-and-wait", "prophet", "waypoint-synth"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSingleProtocol(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "uniform", "-messages", "20", "-protocol", "epidemic"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "epidemic") {
		t.Fatalf("output:\n%s", got)
	}
	if strings.Contains(got, "prophet") {
		t.Fatalf("protocol filter ignored:\n%s", got)
	}
}

func TestBudgetFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "uniform", "-messages", "20",
		"-protocol", "epidemic", "-budget", "1"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown trace", []string{"-trace", "mars"}},
		{"unknown protocol", []string{"-protocol", "teleport"}},
		{"bad flag", []string{"-zzz"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Fatal("bad invocation accepted")
			}
		})
	}
}
