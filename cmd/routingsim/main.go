// Command routingsim compares the DTN unicast routing protocols (the
// §II-A substrate and §II-D alternative design) on a synthetic trace:
// direct delivery, epidemic, binary spray-and-wait and PRoPHET, reporting
// delivery ratio, mean delay and transmission overhead.
//
// Usage:
//
//	routingsim -trace dieselnet -messages 200 -ttl 3
//	routingsim -trace waypoint -protocol prophet
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "routingsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("routingsim", flag.ContinueOnError)
	var (
		traceKind = fs.String("trace", "dieselnet", "trace family: nus, dieselnet, waypoint or uniform")
		protocol  = fs.String("protocol", "", "run one protocol (direct, epidemic, spray-and-wait, prophet); default all")
		messages  = fs.Int("messages", 200, "unicast messages to generate")
		ttlDays   = fs.Int("ttl", 3, "message time-to-live in days")
		budget    = fs.Int("budget", 0, "max transfers per contact direction (0 = unlimited)")
		seed      = fs.Uint64("seed", 1, "workload and trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := buildTrace(*traceKind, *seed)
	if err != nil {
		return err
	}
	msgs := routing.GenerateWorkload(tr, *messages, simtime.Days(*ttlDays), *seed)

	protocols := routing.All()
	if *protocol != "" {
		protocols = nil
		for _, p := range routing.All() {
			if p.Name() == *protocol {
				protocols = []routing.Protocol{p}
			}
		}
		if len(protocols) == 0 {
			return fmt.Errorf("unknown protocol %q", *protocol)
		}
	}

	fmt.Fprintf(stdout, "%d messages over %s (%d nodes, %d sessions, %d days)\n\n",
		len(msgs), tr.Name, tr.NodeCount, len(tr.Sessions), tr.Days())
	fmt.Fprintf(stdout, "%-16s %10s %16s %12s %14s\n",
		"protocol", "delivered", "mean delay", "overhead", "transmissions")
	for _, p := range protocols {
		res, err := routing.Simulate(routing.Config{
			Trace:            tr,
			Messages:         msgs,
			Protocol:         p,
			PerContactBudget: *budget,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-16s %9.1f%% %16v %12.1f %14d\n",
			res.Protocol, res.Ratio*100, res.MeanDelay, res.Overhead, res.Transmissions)
	}
	return nil
}

func buildTrace(kind string, seed uint64) (*trace.Trace, error) {
	switch kind {
	case "nus":
		cfg := tracegen.DefaultNUS()
		cfg.Seed = seed
		return tracegen.NUS(cfg)
	case "dieselnet":
		cfg := tracegen.DefaultDiesel()
		cfg.Seed = seed
		return tracegen.Diesel(cfg)
	case "waypoint":
		cfg := tracegen.DefaultWaypoint()
		cfg.Seed = seed
		return tracegen.Waypoint(cfg)
	case "uniform":
		cfg := tracegen.DefaultUniform()
		cfg.Seed = seed
		return tracegen.Uniform(cfg)
	default:
		return nil, fmt.Errorf("unknown trace family %q", kind)
	}
}
