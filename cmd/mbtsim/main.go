// Command mbtsim runs one cooperative file-sharing simulation and prints
// its delivery ratios and traffic counters.
//
// Usage:
//
//	mbtsim -trace nus -variant MBT -internet 0.5 -metadata 5 -files 3
//	mbtsim -trace dieselnet -variant MBT-QM -seed 7
//	mbtsim -trace-file campus.trace -variant MBT-Q
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mbtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mbtsim", flag.ContinueOnError)
	var (
		traceKind  = fs.String("trace", "nus", "synthetic trace family: nus, dieselnet or waypoint")
		traceFile  = fs.String("trace-file", "", "load a trace file instead of generating one")
		variant    = fs.String("variant", "MBT", "protocol: MBT, MBT-Q or MBT-QM")
		internet   = fs.Float64("internet", 0.5, "fraction of Internet-access nodes")
		metadata   = fs.Int("metadata", 5, "metadata broadcasts per contact")
		files      = fs.Int("files", 3, "files per contact")
		newFiles   = fs.Int("new-files", 50, "new files published per day")
		ttlDays    = fs.Int("ttl", 3, "file time-to-live in days")
		titForTat  = fs.Bool("tft", false, "use the tit-for-tat schedulers")
		freeRiders = fs.Float64("free-riders", 0, "fraction of free-riding nodes")
		loss       = fs.Float64("loss", 0, "per-receiver broadcast loss probability")
		metaCap    = fs.Int("metadata-cap", 0, "per-node metadata store cap (0 = unlimited)")
		cacheCap   = fs.Int("cache-cap", 0, "per-node unwanted piece-cache cap (0 = unlimited)")
		chokeMin   = fs.Float64("choke-credit", 0, "enable encrypted choking at this credit threshold (needs -tft)")
		chokeOpt   = fs.Int("choke-optimistic", 0, "optimistic unchoke every n-th decision (0 = off)")
		failures   = fs.Float64("failures", 0, "fraction of nodes that permanently fail mid-trace")
		msgLevel   = fs.Bool("message-level", false, "run the full wire-encoded protocol stack (slower)")
		seed       = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, freq, err := loadTrace(*traceKind, *traceFile, *seed)
	if err != nil {
		return err
	}

	v, err := core.ParseVariant(*variant)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(tr)
	cfg.Variant = v
	cfg.InternetFraction = *internet
	cfg.MetadataPerContact = *metadata
	cfg.FilesPerContact = *files
	cfg.Workload.NewFilesPerDay = *newFiles
	cfg.Workload.TTL = simtime.Days(*ttlDays)
	cfg.TitForTat = *titForTat
	cfg.FreeRiderFraction = *freeRiders
	cfg.BroadcastLossRate = *loss
	cfg.MetadataCapacity = *metaCap
	cfg.PieceCacheCapacity = *cacheCap
	cfg.ChokeMinCredit = *chokeMin
	cfg.ChokeOptimisticEvery = *chokeOpt
	cfg.NodeFailureRate = *failures
	cfg.MessageLevel = *msgLevel
	cfg.FrequentContactsPerDay = freq
	cfg.Seed = *seed
	cfg.Workload.Seed = *seed

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "trace:               %s (%d nodes, %d sessions, %d days)\n",
		tr.Name, tr.NodeCount, res.Sessions, tr.Days())
	fmt.Fprintf(stdout, "protocol:            %s", res.Variant)
	if *titForTat {
		fmt.Fprintf(stdout, " (tit-for-tat, %.0f%% free-riders)", *freeRiders*100)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "internet nodes:      %d\n", res.InternetNodes)
	fmt.Fprintf(stdout, "queries:             %d\n", res.Queries)
	fmt.Fprintf(stdout, "metadata delivered:  %d (ratio %.3f, mean delay %v)\n",
		res.MetadataDeliveries, res.MetadataRatio, res.MeanMetadataDelay)
	fmt.Fprintf(stdout, "files delivered:     %d (ratio %.3f, mean delay %v)\n",
		res.FileDeliveries, res.FileRatio, res.MeanFileDelay)
	fmt.Fprintf(stdout, "DTN broadcasts:      %d metadata, %d pieces\n",
		res.MetadataBroadcasts, res.PieceBroadcasts)
	return nil
}

func loadTrace(kind, file string, seed uint64) (*trace.Trace, float64, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			return nil, 0, err
		}
		return tr, 1.0 / 3, nil
	}
	switch kind {
	case "nus":
		cfg := tracegen.DefaultNUS()
		cfg.Seed = seed
		tr, err := tracegen.NUS(cfg)
		return tr, 0.25, err
	case "dieselnet":
		cfg := tracegen.DefaultDiesel()
		cfg.Seed = seed
		tr, err := tracegen.Diesel(cfg)
		return tr, 1.0 / 3, err
	case "waypoint":
		cfg := tracegen.DefaultWaypoint()
		cfg.Seed = seed
		tr, err := tracegen.Waypoint(cfg)
		return tr, 1.0 / 3, err
	default:
		return nil, 0, fmt.Errorf("unknown trace family %q (want nus, dieselnet or waypoint)", kind)
	}
}
