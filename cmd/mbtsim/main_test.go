package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestRunNUS(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-trace", "nus", "-variant", "MBT-Q", "-new-files", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"nus-synth", "MBT-Q", "metadata delivered", "files delivered"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	cfg := tracegen.DefaultDiesel()
	cfg.Buses, cfg.Days = 10, 3
	tr, err := tracegen.Diesel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bus.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-trace-file", path, "-new-files", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dieselnet-synth") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown trace", []string{"-trace", "mars"}},
		{"unknown variant", []string{"-variant", "BITTORRENT"}},
		{"missing trace file", []string{"-trace-file", "/does/not/exist"}},
		{"bad internet fraction", []string{"-internet", "2"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Fatal("bad invocation accepted")
			}
		})
	}
}

func TestRunTitForTatFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-trace", "nus", "-tft", "-free-riders", "0.2", "-new-files", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tit-for-tat") {
		t.Fatalf("output missing tit-for-tat banner:\n%s", out.String())
	}
}

func TestRunExtendedKnobs(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-trace", "nus", "-new-files", "10", "-loss", "0.2",
		"-metadata-cap", "100", "-cache-cap", "5",
		"-tft", "-choke-credit", "0.5", "-choke-optimistic", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "files delivered") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestChokeWithoutTFTRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "nus", "-choke-credit", "1"}, &out); err == nil {
		t.Fatal("choking without -tft accepted")
	}
}
