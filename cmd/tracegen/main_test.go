package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestGenerateToStdout(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "uniform", "-nodes", "5", "-days", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount != 5 {
		t.Fatalf("nodes = %d", tr.NodeCount)
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trace")
	var out strings.Builder
	if err := run([]string{"-kind", "dieselnet", "-days", "2", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "dieselnet-synth" {
		t.Fatalf("name = %q", tr.Name)
	}
}

func TestStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "nus", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"nus-synth", "mean session size", "sessions:"} {
		if !strings.Contains(got, want) {
			t.Errorf("stats missing %q:\n%s", want, got)
		}
	}
}

func TestEveryFamilyWithOverrides(t *testing.T) {
	for _, kind := range []string{"nus", "dieselnet", "uniform"} {
		var out strings.Builder
		if err := run([]string{"-kind", kind, "-nodes", "12", "-days", "3", "-stats"}, &out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(out.String(), "nodes:                 12") {
			t.Fatalf("%s: node override ignored:\n%s", kind, out.String())
		}
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown kind", []string{"-kind", "mars"}},
		{"bad node count", []string{"-kind", "nus", "-nodes", "1"}},
		{"bad flag", []string{"-zzz"}},
		{"unwritable out", []string{"-kind", "uniform", "-out", "/does/not/exist/x.trace"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Fatal("bad invocation accepted")
			}
		})
	}
}

func TestWaypointFamily(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "waypoint", "-nodes", "10", "-days", "1", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "waypoint-synth") {
		t.Fatalf("stats:\n%s", out.String())
	}
}
