// Command tracegen generates synthetic DTN contact traces in the text
// format of internal/trace and writes them to stdout or a file.
//
// Usage:
//
//	tracegen -kind nus -out campus.trace
//	tracegen -kind dieselnet -days 30 -seed 7
//	tracegen -kind uniform -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/simtime"
	"repro/internal/stgraph"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind  = fs.String("kind", "nus", "trace family: nus, dieselnet, waypoint or uniform")
		nodes = fs.Int("nodes", 0, "node count (0 = family default)")
		days  = fs.Int("days", 0, "trace length in days (0 = family default)")
		seed  = fs.Uint64("seed", 1, "generator seed")
		out   = fs.String("out", "", "output file (default stdout)")
		stats = fs.Bool("stats", false, "print trace statistics instead of the trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := generate(*kind, *nodes, *days, *seed)
	if err != nil {
		return err
	}

	if *stats {
		return printStats(stdout, tr)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Encode(w, tr)
}

func generate(kind string, nodes, days int, seed uint64) (*trace.Trace, error) {
	switch kind {
	case "nus":
		cfg := tracegen.DefaultNUS()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Students = nodes
		}
		if days > 0 {
			cfg.Days = days
		}
		return tracegen.NUS(cfg)
	case "dieselnet":
		cfg := tracegen.DefaultDiesel()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Buses = nodes
		}
		if days > 0 {
			cfg.Days = days
		}
		return tracegen.Diesel(cfg)
	case "waypoint":
		cfg := tracegen.DefaultWaypoint()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Nodes = nodes
		}
		if days > 0 {
			cfg.Days = days
		}
		return tracegen.Waypoint(cfg)
	case "uniform":
		cfg := tracegen.DefaultUniform()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Nodes = nodes
		}
		if days > 0 {
			cfg.Days = days
		}
		return tracegen.Uniform(cfg)
	default:
		return nil, fmt.Errorf("unknown trace family %q", kind)
	}
}

func printStats(w io.Writer, tr *trace.Trace) error {
	st := trace.NewStats(tr)
	fmt.Fprintf(w, "trace:                 %s\n", tr.Name)
	fmt.Fprintf(w, "nodes:                 %d\n", tr.NodeCount)
	fmt.Fprintf(w, "sessions:              %d\n", len(tr.Sessions))
	fmt.Fprintf(w, "days:                  %d\n", tr.Days())
	fmt.Fprintf(w, "mean session size:     %.2f nodes\n", st.MeanSessionSize())
	fmt.Fprintf(w, "mean session duration: %v\n", st.MeanSessionDuration())
	fmt.Fprintf(w, "isolated nodes:        %d\n", len(st.IsolatedNodes()))
	fmt.Fprintf(w, "frequent pairs (1/3d): %d nodes involved\n",
		len(st.FrequentContacts(1.0/3)))
	fmt.Fprintf(w, "temporal connectivity: %.1f%% of pairs within 3 days\n",
		100*stgraph.TemporalConnectivity(tr, simtime.Days(3)))
	fmt.Fprintf(w, "\nsession durations:\n%s", st.DurationHistogram([]simtime.Duration{
		30 * simtime.Second, 2 * simtime.Minute, 30 * simtime.Minute, 2 * simtime.Hour,
	}))
	fmt.Fprintf(w, "\ninter-contact times:\n%s", st.InterContactHistogram([]simtime.Duration{
		simtime.Hour, 6 * simtime.Hour, simtime.Day, 3 * simtime.Day,
	}))
	return nil
}
