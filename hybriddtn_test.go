package hybriddtn

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	nus := DefaultNUSTrace()
	nus.Students, nus.Classes, nus.Days = 40, 8, 5
	tr, err := NUSTrace(nus)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Workload.NewFilesPerDay = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries generated through facade")
	}
	if res.MetadataRatio < 0 || res.MetadataRatio > 1 {
		t.Fatalf("metadata ratio %v", res.MetadataRatio)
	}
}

func TestFacadeVariants(t *testing.T) {
	if len(Variants()) != 3 {
		t.Fatalf("variants = %v", Variants())
	}
	v, err := ParseVariant("MBT-QM")
	if err != nil || v != MBTQM {
		t.Fatalf("ParseVariant = %v, %v", v, err)
	}
}

func TestFacadeTraceGenerators(t *testing.T) {
	d := DefaultDieselTrace()
	d.Buses, d.Days = 10, 3
	tr, err := DieselTrace(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	u := DefaultUniformTrace()
	u.Sessions = 10
	tru, err := UniformTrace(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(tru.Sessions) != 10 {
		t.Fatalf("uniform sessions = %d", len(tru.Sessions))
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 11 {
		t.Fatalf("experiments = %d, want 11 panels", len(Experiments()))
	}
	def, err := LookupExperiment("fig3f")
	if err != nil {
		t.Fatal(err)
	}
	def.Xs = []float64{0.8}
	s, err := RunExperiment(def, ExperimentOptions{Seed: 1, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || len(s.Points[0].Cells) != 3 {
		t.Fatalf("series = %+v", s)
	}
}

func TestFacadeWaypointTrace(t *testing.T) {
	cfg := DefaultWaypointTrace()
	cfg.Nodes, cfg.Days = 10, 1
	tr, err := WaypointTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMessageLevelRun(t *testing.T) {
	nus := DefaultNUSTrace()
	nus.Students, nus.Classes, nus.Days = 30, 6, 3
	tr, err := NUSTrace(nus)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Workload.NewFilesPerDay = 5
	cfg.MessageLevel = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries in message-level run")
	}
}
