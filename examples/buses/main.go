// Buses: the vehicular scenario of the paper's Figure 2. A DieselNet-
// style fleet shares files through short pairwise bus meetings; the
// example compares all three protocols on the same trace and shows why
// the file-discovery step (metadata distribution) matters.
package main

import (
	"fmt"
	"log"

	hybriddtn "repro"
)

func main() {
	traceCfg := hybriddtn.DefaultDieselTrace()
	traceCfg.Days = 14

	tr, err := hybriddtn.DieselTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus fleet: %d buses, %d pairwise meetings over %d days\n\n",
		tr.NodeCount, len(tr.Sessions), tr.Days())

	fmt.Printf("%-8s %15s %15s\n", "variant", "metadata ratio", "file ratio")
	for _, v := range hybriddtn.Variants() {
		cfg := hybriddtn.DefaultConfig(tr)
		cfg.Variant = v
		// The paper's DieselNet rule: pairs meeting at least every three
		// days are frequent contacts.
		cfg.FrequentContactsPerDay = 1.0 / 3

		res, err := hybriddtn.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %15.3f %15.3f\n", v, res.MetadataRatio, res.FileRatio)
	}
	fmt.Println("\nMBT distributes queries and metadata ahead of the files;")
	fmt.Println("MBT-QM (no discovery) must rely on popularity pushes alone.")
}
