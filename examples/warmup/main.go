// Warmup: how the system reaches steady state. Runs MBT over the campus
// trace and prints the per-day query and delivery counts — day by day,
// metadata distribution warms up (stores fill, frequent-contact caches
// populate) until deliveries track the daily query load.
package main

import (
	"fmt"
	"log"
	"strings"

	hybriddtn "repro"
)

func main() {
	tr, err := hybriddtn.NUSTrace(hybriddtn.DefaultNUSTrace())
	if err != nil {
		log.Fatal(err)
	}

	cfg := hybriddtn.DefaultConfig(tr)
	cfg.Variant = hybriddtn.MBT
	cfg.FrequentContactsPerDay = 0.25

	sim, err := hybriddtn.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	days := cfg.Workload.Days
	series := sim.Collector().DailySeries(days)

	fmt.Println("day-by-day activity, MBT on the campus trace")
	fmt.Printf("%-5s %9s %15s %12s  %s\n", "day", "queries", "meta delivered", "files done", "")
	for day, st := range series {
		bar := strings.Repeat("#", st.FilesDelivered/4)
		fmt.Printf("%-5d %9d %15d %12d  %s\n",
			day, st.QueriesCreated, st.MetadataDelivered, st.FilesDelivered, bar)
	}
	fmt.Println("\nweekends (days 5 and 6) hold no classes: queries pile up and")
	fmt.Println("the following weekdays clear the backlog.")
}
