// Quickstart: generate a small campus trace, run the full MBT protocol
// over it, and print the delivery ratios — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	hybriddtn "repro"
)

func main() {
	// A small campus: 80 students, 16 courses, one week.
	traceCfg := hybriddtn.DefaultNUSTrace()
	traceCfg.Students = 80
	traceCfg.Classes = 16
	traceCfg.Days = 7

	tr, err := hybriddtn.NUSTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := hybriddtn.DefaultConfig(tr)
	cfg.Variant = hybriddtn.MBT
	cfg.InternetFraction = 0.5 // half the students sometimes reach WiFi
	cfg.Workload.NewFilesPerDay = 20

	res, err := hybriddtn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d students over %d contact sessions\n",
		tr.NodeCount, res.Sessions)
	fmt.Printf("queries by offline students:  %d\n", res.Queries)
	fmt.Printf("metadata delivery ratio:      %.3f (mean delay %v)\n",
		res.MetadataRatio, res.MeanMetadataDelay)
	fmt.Printf("file delivery ratio:          %.3f (mean delay %v)\n",
		res.FileRatio, res.MeanFileDelay)
}
