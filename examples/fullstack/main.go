// Fullstack: the complete message-level protocol of §III-B–§V on one
// classroom contact — hello beacons, Bron–Kerbosch clique agreement,
// coordinator election, then metadata and piece transfer as encoded wire
// messages with receiver-side signature and checksum verification. This
// is the "non-simplified" protocol; the figure simulations use the
// equivalent (and cross-validated) simulation kernel for speed.
package main

import (
	"fmt"
	"log"

	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// One teacher-of-sorts (node 0) downloaded three episodes over WiFi;
	// five classmates with pending searches sit in the same room.
	publisher := "FOX"
	key := workload.KeyFor(publisher)

	seeder := node.New(0, true)
	members := []*node.Node{seeder}
	for i := 1; i <= 5; i++ {
		members = append(members, node.New(trace.NodeID(i), false))
	}

	for f := 0; f < 3; f++ {
		m := metadata.NewSynthetic(metadata.FileID(f),
			fmt.Sprintf("ep%d nature documentary episode %d", f, f),
			publisher, "wildlife special", 64*1024, 16*1024,
			0, simtime.Days(3), key)
		seeder.AddMetadata(m, 0.5+float64(f)/10, 0)
		seeder.GrantFullFile(m.URI, m.NumPieces())
	}
	// Two students want episode 1, one wants episode 2.
	members[1].AddQuery("ep1", simtime.Time(simtime.Days(3)))
	members[2].AddQuery("ep1", simtime.Time(simtime.Days(3)))
	members[3].AddQuery("ep2", simtime.Time(simtime.Days(3)))

	rep, err := proto.RunSession(simtime.At(0, 9*simtime.Hour), members, proto.Config{
		MetadataBudget: 4,
		PieceBudget:    12,
		AutoSelect:     true,
		Keys:           workload.KeyFor,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clique agreed by all members: %v (coordinator %v)\n",
		rep.Clique, rep.Coordinator)
	fmt.Printf("hello:     %d msgs, %d bytes\n", rep.HelloMessages, rep.HelloBytes)
	fmt.Printf("metadata:  %d msgs, %d bytes (%d stored)\n",
		rep.MetadataMessages, rep.MetadataBytes, rep.MetadataDelivered)
	fmt.Printf("pieces:    %d msgs, %d bytes (%d stored)\n",
		rep.PieceMessages, rep.PieceBytes, rep.PiecesDelivered)
	fmt.Printf("verify failures: %d\n", rep.VerifyFailures)
	for _, c := range rep.Completions {
		fmt.Printf("node %d completed %s (checksums verified)\n", c.Node, c.URI)
	}
}
