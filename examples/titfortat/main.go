// Titfortat: the selfish-node scenario of §IV-B and §V-B. Under the
// tit-for-tat schedulers, nodes broadcast in an agreed cyclic order and
// weigh requests by the requesters' earned credit; free-riders receive
// broadcasts but never transmit, so they earn no credit and their
// requests carry no weight. The example runs one simulation with 30%
// free-riders and compares the two groups — showing the incentive at
// work, and why the broadcast medium means free-riders can never be
// fully excluded (the paper's own caveat).
package main

import (
	"fmt"
	"log"

	hybriddtn "repro"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

func main() {
	traceCfg := hybriddtn.DefaultNUSTrace()
	traceCfg.Students = 120
	traceCfg.Classes = 24

	tr, err := hybriddtn.NUSTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := hybriddtn.DefaultConfig(tr)
	cfg.Variant = hybriddtn.MBT
	cfg.TitForTat = true
	cfg.FreeRiderFraction = 0.3
	cfg.FrequentContactsPerDay = 0.25
	cfg.MetadataPerContact = 2 // scarce budget makes the incentive visible

	sim, err := hybriddtn.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	perNode := sim.Collector().PerNode()
	var contributors, riders group
	for _, nd := range sim.Nodes() {
		st, ok := perNode[nd.ID]
		if !ok {
			continue // Internet nodes are not measured
		}
		if nd.FreeRider {
			riders.add(st)
		} else {
			contributors.add(st)
		}
	}

	fmt.Println("tit-for-tat MBT, 30% free-riders, scarce metadata budget")
	fmt.Printf("%-14s %8s %15s %18s\n", "group", "queries", "metadata ratio", "mean meta delay")
	contributors.print("contributors")
	riders.print("free-riders")
	fmt.Println("\ncontributors' requests carry credit, so they are served first;")
	fmt.Println("free-riders still overhear broadcasts, so they are slowed, not starved.")
}

// group accumulates NodeStats for one population.
type group struct {
	queries, meta int
	delay         simtime.Duration
}

func (g *group) add(st metrics.NodeStats) {
	g.queries += st.Queries
	g.meta += st.MetadataDeliveries
	g.delay += st.TotalMetadataDelay
}

func (g *group) print(name string) {
	ratio := 0.0
	meanDelay := simtime.Duration(0)
	if g.queries > 0 {
		ratio = float64(g.meta) / float64(g.queries)
	}
	if g.meta > 0 {
		meanDelay = g.delay / simtime.Duration(g.meta)
	}
	fmt.Printf("%-14s %8d %15.3f %18v\n", name, g.queries, ratio, meanDelay)
}
