// Campus: the NUS-style scenario of the paper's Figure 3. Students form
// classroom cliques where broadcast download shines; the example sweeps
// the attendance rate (Figure 3(f)) and prints how delivery degrades as
// students skip class — fewer contact opportunities, thinner cliques.
package main

import (
	"fmt"
	"log"

	hybriddtn "repro"
)

func main() {
	fmt.Println("attendance sweep on the campus trace (protocol: MBT)")
	fmt.Printf("%-12s %10s %15s %15s\n", "attendance", "sessions", "metadata ratio", "file ratio")

	for _, attendance := range []float64{0.5, 0.7, 0.9, 1.0} {
		traceCfg := hybriddtn.DefaultNUSTrace()
		traceCfg.Attendance = attendance

		tr, err := hybriddtn.NUSTrace(traceCfg)
		if err != nil {
			log.Fatal(err)
		}

		cfg := hybriddtn.DefaultConfig(tr)
		cfg.Variant = hybriddtn.MBT
		// Classmates sharing a course meet ~2 times a week.
		cfg.FrequentContactsPerDay = 0.25

		res, err := hybriddtn.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %10d %15.3f %15.3f\n",
			attendance, res.Sessions, res.MetadataRatio, res.FileRatio)
	}
}
