// Queryrouting: the alternative design the paper contrasts with (§II-D)
// — instead of distributing metadata through the DTN, route each query as
// a unicast message to an Internet-access node using classic DTN routing.
// The example runs direct delivery, epidemic, binary spray-and-wait and
// PRoPHET over the bus trace and reports how many queries would even
// reach the Internet, at what delay and at what transmission cost —
// motivating the paper's choice of proactive metadata distribution.
package main

import (
	"fmt"
	"log"

	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	traceCfg := tracegen.DefaultDiesel()
	traceCfg.Days = 14
	tr, err := tracegen.Diesel(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Half the buses reach the Internet; queries from the other half
	// must be carried to one of them.
	r := rng.New(7)
	perm := r.Perm(tr.NodeCount)
	internet := perm[:tr.NodeCount/2]
	offline := perm[tr.NodeCount/2:]

	const ttl = 3 // days, matching the file TTL
	var msgs []routing.Message
	for day := 0; day < traceCfg.Days-ttl; day++ {
		for _, src := range offline {
			// Each offline bus sends ~2 queries/day (the paper's rate),
			// each addressed to a random Internet-access bus.
			for q := 0; q < 2; q++ {
				dst := internet[r.Intn(len(internet))]
				created := simtime.At(day, simtime.FileGenerationOffset)
				msgs = append(msgs, routing.Message{
					ID:      len(msgs),
					Src:     trace.NodeID(src),
					Dst:     trace.NodeID(dst),
					Created: created,
					Expires: created.Add(simtime.Days(ttl)),
				})
			}
		}
	}

	fmt.Printf("routing %d queries from %d offline buses to the Internet\n\n",
		len(msgs), len(offline))
	fmt.Printf("%-16s %10s %14s %12s\n", "protocol", "delivered", "mean delay", "overhead")
	for _, p := range routing.All() {
		res, err := routing.Simulate(routing.Config{
			Trace:    tr,
			Messages: msgs,
			Protocol: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.1f%% %14v %12.1f\n",
			res.Protocol, res.Ratio*100, res.MeanDelay, res.Overhead)
	}
	fmt.Println("\neven epidemic flooding pays hours of delay per query — which is")
	fmt.Println("why MBT distributes metadata ahead of demand instead.")
}
